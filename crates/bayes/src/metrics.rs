//! Calibration and uncertainty metrics.
//!
//! All metrics take a `[batch, classes]` tensor of predictive probabilities
//! (rows on the simplex) and the ground-truth labels. Expected calibration
//! error follows the standard equal-width binning of the maximum-probability
//! confidence, the definition used by the paper's Table I.

use crate::BayesError;
use bnn_tensor::ops::{argmax_rows, max_rows, row_entropy};
use bnn_tensor::Tensor;

fn validate(probs: &Tensor, labels: &[usize]) -> Result<(usize, usize), BayesError> {
    let (batch, classes) = probs.shape().as_matrix().map_err(BayesError::from)?;
    if labels.len() != batch {
        return Err(BayesError::Invalid(format!(
            "{} labels for {batch} predictions",
            labels.len()
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(BayesError::Invalid(format!(
            "label {bad} out of range for {classes} classes"
        )));
    }
    if batch == 0 {
        return Err(BayesError::Invalid("empty prediction batch".into()));
    }
    Ok((batch, classes))
}

/// Top-1 classification accuracy.
///
/// # Errors
///
/// Returns [`BayesError::Invalid`] for shape/label mismatches.
pub fn accuracy(probs: &Tensor, labels: &[usize]) -> Result<f64, BayesError> {
    validate(probs, labels)?;
    let preds = argmax_rows(probs)?;
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f64 / labels.len() as f64)
}

/// Per-bin calibration statistics produced by [`reliability_diagram`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CalibrationBin {
    /// Lower edge of the confidence bin.
    pub lower: f64,
    /// Upper edge of the confidence bin.
    pub upper: f64,
    /// Number of samples whose confidence fell in this bin.
    pub count: usize,
    /// Mean confidence of those samples.
    pub mean_confidence: f64,
    /// Empirical accuracy of those samples.
    pub accuracy: f64,
}

/// Computes the reliability diagram (per-bin confidence vs accuracy).
///
/// # Errors
///
/// Returns [`BayesError::Invalid`] for shape/label mismatches or zero bins.
pub fn reliability_diagram(
    probs: &Tensor,
    labels: &[usize],
    bins: usize,
) -> Result<Vec<CalibrationBin>, BayesError> {
    validate(probs, labels)?;
    if bins == 0 {
        return Err(BayesError::Invalid("bin count must be positive".into()));
    }
    let confidences = max_rows(probs)?;
    let predictions = argmax_rows(probs)?;
    let mut out: Vec<CalibrationBin> = (0..bins)
        .map(|b| CalibrationBin {
            lower: b as f64 / bins as f64,
            upper: (b + 1) as f64 / bins as f64,
            ..CalibrationBin::default()
        })
        .collect();
    let mut conf_sum = vec![0.0f64; bins];
    let mut correct = vec![0usize; bins];
    for ((&conf, &pred), &label) in confidences.iter().zip(&predictions).zip(labels) {
        let mut bin = (conf as f64 * bins as f64) as usize;
        if bin >= bins {
            bin = bins - 1;
        }
        out[bin].count += 1;
        conf_sum[bin] += conf as f64;
        if pred == label {
            correct[bin] += 1;
        }
    }
    for (b, bin) in out.iter_mut().enumerate() {
        if bin.count > 0 {
            bin.mean_confidence = conf_sum[b] / bin.count as f64;
            bin.accuracy = correct[b] as f64 / bin.count as f64;
        }
    }
    Ok(out)
}

/// Expected calibration error with `bins` equal-width confidence bins.
///
/// # Errors
///
/// Returns [`BayesError::Invalid`] for shape/label mismatches or zero bins.
pub fn expected_calibration_error(
    probs: &Tensor,
    labels: &[usize],
    bins: usize,
) -> Result<f64, BayesError> {
    let diagram = reliability_diagram(probs, labels, bins)?;
    let total: usize = diagram.iter().map(|b| b.count).sum();
    Ok(diagram
        .iter()
        .filter(|b| b.count > 0)
        .map(|b| (b.count as f64 / total as f64) * (b.accuracy - b.mean_confidence).abs())
        .sum())
}

/// Maximum calibration error (largest per-bin |accuracy − confidence| gap).
///
/// # Errors
///
/// Returns [`BayesError::Invalid`] for shape/label mismatches or zero bins.
pub fn maximum_calibration_error(
    probs: &Tensor,
    labels: &[usize],
    bins: usize,
) -> Result<f64, BayesError> {
    let diagram = reliability_diagram(probs, labels, bins)?;
    Ok(diagram
        .iter()
        .filter(|b| b.count > 0)
        .map(|b| (b.accuracy - b.mean_confidence).abs())
        .fold(0.0, f64::max))
}

/// Mean negative log-likelihood of the true class.
///
/// # Errors
///
/// Returns [`BayesError::Invalid`] for shape/label mismatches.
pub fn negative_log_likelihood(probs: &Tensor, labels: &[usize]) -> Result<f64, BayesError> {
    let (batch, classes) = validate(probs, labels)?;
    let data = probs.as_slice();
    let mut nll = 0.0f64;
    for (b, &label) in labels.iter().enumerate() {
        let p = data[b * classes + label].max(1e-12) as f64;
        nll -= p.ln();
    }
    Ok(nll / batch as f64)
}

/// Mean Brier score (mean squared error against the one-hot label).
///
/// # Errors
///
/// Returns [`BayesError::Invalid`] for shape/label mismatches.
pub fn brier_score(probs: &Tensor, labels: &[usize]) -> Result<f64, BayesError> {
    let (batch, classes) = validate(probs, labels)?;
    let data = probs.as_slice();
    let mut total = 0.0f64;
    for (b, &label) in labels.iter().enumerate() {
        for c in 0..classes {
            let target = if c == label { 1.0 } else { 0.0 };
            let diff = data[b * classes + c] as f64 - target;
            total += diff * diff;
        }
    }
    Ok(total / batch as f64)
}

/// Mean predictive entropy (nats) of the probability rows.
///
/// # Errors
///
/// Returns [`BayesError::Invalid`] if the tensor is not `[batch, classes]`.
pub fn mean_predictive_entropy(probs: &Tensor) -> Result<f64, BayesError> {
    let entropies = row_entropy(probs)?;
    if entropies.is_empty() {
        return Err(BayesError::Invalid("empty prediction batch".into()));
    }
    Ok(entropies.iter().map(|&e| e as f64).sum::<f64>() / entropies.len() as f64)
}

/// Mutual information between the prediction and the model posterior, estimated
/// from per-sample MC predictive distributions:
/// `MI = H(mean_s p_s) - mean_s H(p_s)` (the "BALD" epistemic-uncertainty score).
///
/// `per_sample_probs` holds one `[batch, classes]` tensor per MC sample.
///
/// # Errors
///
/// Returns [`BayesError::Invalid`] if the list is empty or shapes disagree.
pub fn mutual_information(per_sample_probs: &[Tensor]) -> Result<Vec<f64>, BayesError> {
    let first = per_sample_probs
        .first()
        .ok_or_else(|| BayesError::Invalid("need at least one MC sample".into()))?;
    let mean = Tensor::mean_of(per_sample_probs)?;
    let total_entropy = row_entropy(&mean)?;
    let (batch, _classes) = first.shape().as_matrix()?;
    let mut expected_entropy = vec![0.0f64; batch];
    for sample in per_sample_probs {
        let h = row_entropy(sample)?;
        for (acc, &v) in expected_entropy.iter_mut().zip(&h) {
            *acc += v as f64;
        }
    }
    let s = per_sample_probs.len() as f64;
    Ok(total_entropy
        .iter()
        .zip(&expected_entropy)
        .map(|(&total, &exp)| (total as f64 - exp / s).max(0.0))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn probs(rows: &[&[f32]]) -> Tensor {
        let classes = rows[0].len();
        let data: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Tensor::from_vec(data, &[rows.len(), classes]).unwrap()
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let p = probs(&[&[0.9, 0.1], &[0.3, 0.7], &[0.6, 0.4]]);
        assert!((accuracy(&p, &[0, 1, 1]).unwrap() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn perfectly_calibrated_predictions_have_zero_ece() {
        // Confidence 1.0, always correct.
        let p = probs(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let ece = expected_calibration_error(&p, &[0, 1], 10).unwrap();
        assert!(ece < 1e-9);
    }

    #[test]
    fn overconfident_wrong_predictions_have_high_ece() {
        // Confidence ~1.0 but always wrong.
        let p = probs(&[&[0.99, 0.01], &[0.99, 0.01]]);
        let ece = expected_calibration_error(&p, &[1, 1], 10).unwrap();
        assert!(ece > 0.9);
    }

    #[test]
    fn ece_hand_computed_case() {
        // Two samples at confidence 0.75 (bin 7), one correct -> acc 0.5, gap 0.25.
        // Two samples at confidence 0.95 (bin 9), both correct -> gap 0.05.
        let p = probs(&[&[0.75, 0.25], &[0.75, 0.25], &[0.95, 0.05], &[0.95, 0.05]]);
        let labels = [0, 1, 0, 0];
        let ece = expected_calibration_error(&p, &labels, 10).unwrap();
        let expected = 0.5 * 0.25 + 0.5 * 0.05;
        assert!((ece - expected).abs() < 1e-6, "ece {ece}");
        let mce = maximum_calibration_error(&p, &labels, 10).unwrap();
        assert!((mce - 0.25).abs() < 1e-6);
    }

    #[test]
    fn reliability_diagram_bins_sum_to_batch() {
        let p = probs(&[&[0.6, 0.4], &[0.4, 0.6], &[0.9, 0.1], &[0.2, 0.8]]);
        let diagram = reliability_diagram(&p, &[0, 1, 0, 1], 5).unwrap();
        assert_eq!(diagram.len(), 5);
        assert_eq!(diagram.iter().map(|b| b.count).sum::<usize>(), 4);
    }

    #[test]
    fn nll_and_brier_known_values() {
        let p = probs(&[&[0.5, 0.5]]);
        assert!((negative_log_likelihood(&p, &[0]).unwrap() - (2.0f64).ln()).abs() < 1e-6);
        assert!((brier_score(&p, &[0]).unwrap() - 0.5).abs() < 1e-6);
        let p = probs(&[&[1.0, 0.0]]);
        assert!(negative_log_likelihood(&p, &[0]).unwrap() < 1e-6);
        assert!(brier_score(&p, &[0]).unwrap() < 1e-9);
    }

    #[test]
    fn entropy_is_maximal_for_uniform() {
        let uniform = probs(&[&[0.25; 4]]);
        let confident = probs(&[&[0.97, 0.01, 0.01, 0.01]]);
        assert!(
            mean_predictive_entropy(&uniform).unwrap()
                > mean_predictive_entropy(&confident).unwrap()
        );
    }

    #[test]
    fn mutual_information_zero_when_samples_agree() {
        let s = probs(&[&[0.7, 0.3], &[0.2, 0.8]]);
        let mi = mutual_information(&[s.clone(), s.clone(), s]).unwrap();
        assert!(mi.iter().all(|&v| v < 1e-6));
    }

    #[test]
    fn mutual_information_positive_when_samples_disagree() {
        let a = probs(&[&[0.9, 0.1]]);
        let b = probs(&[&[0.1, 0.9]]);
        let mi = mutual_information(&[a, b]).unwrap();
        assert!(mi[0] > 0.3);
    }

    #[test]
    fn validation_errors() {
        let p = probs(&[&[0.5, 0.5]]);
        assert!(accuracy(&p, &[0, 1]).is_err());
        assert!(accuracy(&p, &[2]).is_err());
        assert!(expected_calibration_error(&p, &[0], 0).is_err());
        assert!(mutual_information(&[]).is_err());
        let empty = Tensor::zeros(&[0, 2]);
        assert!(accuracy(&empty, &[]).is_err());
    }

    proptest! {
        #[test]
        fn ece_in_unit_interval(
            raw in proptest::collection::vec(0.01f32..1.0, 12..=12),
            labels in proptest::collection::vec(0usize..3, 4..=4),
        ) {
            // build 4 samples x 3 classes, normalised rows
            let mut data = raw;
            for b in 0..4 {
                let s: f32 = data[b * 3..(b + 1) * 3].iter().sum();
                for c in 0..3 {
                    data[b * 3 + c] /= s;
                }
            }
            let p = Tensor::from_vec(data, &[4, 3]).unwrap();
            let ece = expected_calibration_error(&p, &labels, 10).unwrap();
            prop_assert!((0.0..=1.0).contains(&ece));
            let mce = maximum_calibration_error(&p, &labels, 10).unwrap();
            prop_assert!(mce + 1e-12 >= ece);
        }

        #[test]
        fn brier_bounded_by_two(
            raw in proptest::collection::vec(0.01f32..1.0, 6..=6),
            labels in proptest::collection::vec(0usize..3, 2..=2),
        ) {
            let mut data = raw;
            for b in 0..2 {
                let s: f32 = data[b * 3..(b + 1) * 3].iter().sum();
                for c in 0..3 {
                    data[b * 3 + c] /= s;
                }
            }
            let p = Tensor::from_vec(data, &[2, 3]).unwrap();
            let brier = brier_score(&p, &labels).unwrap();
            prop_assert!((0.0..=2.0).contains(&brier));
        }
    }
}
