//! One-call evaluation summary combining every metric used by the paper.

use crate::metrics::{
    accuracy, brier_score, expected_calibration_error, maximum_calibration_error,
    mean_predictive_entropy, negative_log_likelihood,
};
use crate::BayesError;
use bnn_tensor::Tensor;

/// A full quality summary of a set of predictive probabilities.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Evaluation {
    /// Top-1 accuracy.
    pub accuracy: f64,
    /// Expected calibration error.
    pub ece: f64,
    /// Maximum calibration error.
    pub mce: f64,
    /// Mean negative log-likelihood.
    pub nll: f64,
    /// Mean Brier score.
    pub brier: f64,
    /// Mean predictive entropy (nats).
    pub mean_entropy: f64,
}

impl Evaluation {
    /// Evaluates probabilities against labels using `bins` calibration bins.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::Invalid`] for shape/label mismatches or zero bins.
    pub fn from_probs(probs: &Tensor, labels: &[usize], bins: usize) -> Result<Self, BayesError> {
        Ok(Evaluation {
            accuracy: accuracy(probs, labels)?,
            ece: expected_calibration_error(probs, labels, bins)?,
            mce: maximum_calibration_error(probs, labels, bins)?,
            nll: negative_log_likelihood(probs, labels)?,
            brier: brier_score(probs, labels)?,
            mean_entropy: mean_predictive_entropy(probs)?,
        })
    }
}

impl std::fmt::Display for Evaluation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "acc={:.4} ece={:.4} mce={:.4} nll={:.4} brier={:.4} entropy={:.4}",
            self.accuracy, self.ece, self.mce, self.nll, self.brier, self.mean_entropy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_aggregates_all_metrics() {
        let probs = Tensor::from_vec(vec![0.9, 0.1, 0.3, 0.7, 0.6, 0.4], &[3, 2]).unwrap();
        let eval = Evaluation::from_probs(&probs, &[0, 1, 0], 10).unwrap();
        assert!((eval.accuracy - 1.0).abs() < 1e-9);
        assert!(eval.ece >= 0.0 && eval.ece <= 1.0);
        assert!(eval.mce >= eval.ece - 1e-12);
        assert!(eval.nll > 0.0);
        assert!(eval.brier >= 0.0);
        assert!(eval.mean_entropy > 0.0);
        let text = eval.to_string();
        assert!(text.contains("acc=") && text.contains("ece="));
    }

    #[test]
    fn propagates_validation_errors() {
        let probs = Tensor::zeros(&[2, 3]);
        assert!(Evaluation::from_probs(&probs, &[0], 10).is_err());
    }
}
