//! Monte-Carlo Dropout prediction for multi-exit networks.
//!
//! Two prediction paths are provided:
//!
//! * [`McSampler::predict`] — the paper's multi-exit MCD inference: the
//!   deterministic backbone runs **once**, its block activations are cached,
//!   and every additional MC sample only re-runs the (cheap) exit branches
//!   with fresh dropout masks. One forward pass of all exits yields
//!   `N_exit` samples, so `N_pass = ceil(N_sample / N_exit)` (paper §IV-B).
//! * [`McSampler::predict_single_exit`] — the vanilla MCD baseline that
//!   re-runs the whole network for every sample (paper Eq. 1).
//!
//! Threshold-based early exiting (used for the ECE-optimal rows of
//! Table I) is provided by [`McSampler::adaptive_exit_predict`], with
//! [`McSampler::confidence_exit_predict`] and
//! [`McSampler::entropy_exit_predict`] as the two policy shorthands. When
//! the network compiles to a [`bnn_models::MultiExitPlan`], early exiting
//! runs on the plan's adaptive batched path — stragglers are compacted into
//! a shrinking dense batch and easy samples stop paying for deeper blocks —
//! and falls back to a full-depth layer-chain sweep otherwise. The two
//! paths are bit-identical.
//!
//! # Determinism and parallelism
//!
//! Every Monte-Carlo pass draws its dropout masks from a dedicated RNG
//! stream derived from [`SamplingConfig::seed`] and the pass index (via
//! [`bnn_tensor::rng::stream_seed`] and [`Network::reseed_mc_streams`]), so a
//! prediction depends only on the network checkpoint, the inputs and the
//! sampler seed — never on earlier passes or on scheduling. That is what
//! lets [`McSampler::predict`] fan independent passes out across the
//! executor's thread pool (each worker gets a [`MultiExitNetwork::replicate`]
//! inference replica) while staying bitwise identical to the
//! single-threaded run.

use crate::BayesError;
use bnn_models::{ExitPolicy, MultiExitNetwork};
use bnn_nn::layer::Mode;
use bnn_nn::network::Network;
use bnn_tensor::exec::{in_parallel_region, Executor};
use bnn_tensor::ops::softmax;
use bnn_tensor::rng::stream_seed;
use bnn_tensor::Tensor;

/// Configuration of an MC-Dropout prediction run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Total number of MC samples to draw (across all exits).
    pub n_samples: usize,
    /// Calibration bin count used by downstream evaluation (carried along for
    /// convenience in reports).
    pub bins: usize,
    /// Master seed of the per-pass dropout-mask streams. Predictions with the
    /// same seed, network and inputs are bitwise reproducible.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            n_samples: 4,
            bins: 15,
            seed: 2023,
        }
    }
}

impl SamplingConfig {
    /// Creates a configuration drawing `n_samples` MC samples.
    pub fn new(n_samples: usize) -> Self {
        SamplingConfig {
            n_samples,
            bins: 15,
            seed: 2023,
        }
    }

    /// Sets the master seed of the per-pass dropout-mask streams.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of exit forward passes needed for a network with `n_exits` exits.
    pub fn passes_for(&self, n_exits: usize) -> usize {
        if n_exits == 0 {
            return 0;
        }
        self.n_samples.div_ceil(n_exits)
    }
}

/// The result of an MC-Dropout prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct McPrediction {
    /// Equally weighted mean of all per-sample probability tensors, `[batch, classes]`.
    pub mean_probs: Tensor,
    /// Every individual sample's probabilities (one `[batch, classes]` tensor
    /// per exit per pass).
    pub per_sample: Vec<Tensor>,
    /// Number of exit forward passes that were executed.
    pub passes: usize,
}

impl McPrediction {
    /// Number of MC samples that contributed to the mean.
    pub fn num_samples(&self) -> usize {
        self.per_sample.len()
    }
}

/// The result of confidence-threshold early exiting.
#[derive(Debug, Clone, PartialEq)]
pub struct EarlyExitPrediction {
    /// Final probabilities for every sample, `[batch, classes]`.
    pub probs: Tensor,
    /// Index of the exit each sample stopped at.
    pub exit_taken: Vec<usize>,
    /// Mean fraction of the full-network FLOPs actually spent, per sample.
    pub mean_flops_fraction: f64,
}

/// Monte-Carlo Dropout sampler.
#[derive(Debug, Clone, Default)]
pub struct McSampler {
    config: SamplingConfig,
    executor: Executor,
}

impl McSampler {
    /// Creates a sampler with the given configuration on the process-global
    /// executor ([`Executor::global`]).
    pub fn new(config: SamplingConfig) -> Self {
        McSampler {
            config,
            executor: Executor::global(),
        }
    }

    /// Sets the executor MC passes fan out on. [`Executor::sequential`]
    /// forces single-threaded sampling (results are identical either way).
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// The sampler configuration.
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }

    /// Multi-exit MCD prediction with backbone caching (paper Eq. 2).
    ///
    /// The deterministic backbone runs once; the (cheap) exit passes are
    /// independent given their seeded mask streams and fan out across the
    /// sampler's executor. Plannable networks (no batch normalisation or
    /// residual blocks) execute on a compiled [`bnn_models::MultiExitPlan`]
    /// **cached on the network** ([`MultiExitNetwork::cached_plan`]) —
    /// backbone and exits run in preallocated arenas reused across passes
    /// *and across predictions* (the lowering + weight-packing compile
    /// reruns only after a weight mutation or input-shape change), and
    /// worker replicas are plan clones instead of per-worker spec rebuilds;
    /// non-plannable networks take the layer chain. The two paths are
    /// **bit-identical** (the plan reproduces every layer kernel and mask
    /// stream exactly), as are all thread counts, including the sequential
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn predict(
        &self,
        network: &mut MultiExitNetwork,
        inputs: &Tensor,
    ) -> Result<McPrediction, BayesError> {
        let n_exits = network.num_exits();
        if n_exits == 0 {
            return Err(BayesError::Invalid("network has no exits".into()));
        }
        if inputs.dims().len() >= 2 {
            if let Ok(plan) = network.cached_plan(&inputs.dims()[1..]) {
                return self.predict_planned(plan, inputs, n_exits);
            }
        }
        self.predict_layered(network, inputs, n_exits)
    }

    /// The planned prediction path: one compiled plan, arenas reused across
    /// passes, plan clones as worker replicas. Borrows the network's cached
    /// plan so nothing recompiles on a repeat prediction.
    fn predict_planned(
        &self,
        plan: &mut bnn_models::MultiExitPlan,
        inputs: &Tensor,
        n_exits: usize,
    ) -> Result<McPrediction, BayesError> {
        let passes = self.config.passes_for(n_exits).max(1);
        let activations = plan.forward_backbone(inputs, Mode::Eval)?;
        let pass_seeds: Vec<u64> = (0..passes)
            .map(|p| stream_seed(self.config.seed, p as u64))
            .collect();

        let pass_exits: Vec<Vec<Tensor>> =
            if self.executor.threads() > 1 && passes > 1 && !in_parallel_region() {
                // One plan clone per *worker*, not per pass; worker w runs
                // passes w, w+W, … and each pass reseeds from its own
                // stream, so the assignment does not affect the result. The
                // cached plan itself serves the last worker, so only
                // `workers - 1` clones are materialised.
                let workers = self.executor.threads().min(passes);
                let mut clones: Vec<bnn_models::MultiExitPlan> = Vec::with_capacity(workers - 1);
                for _ in 0..workers - 1 {
                    clones.push(plan.clone());
                }
                let mut replicas: Vec<&mut bnn_models::MultiExitPlan> = clones.iter_mut().collect();
                replicas.push(plan);
                let per_worker: Vec<Vec<Vec<Tensor>>> = self
                    .executor
                    .par_map_mut(&mut replicas, |w, replica| {
                        pass_seeds[w..]
                            .iter()
                            .step_by(workers)
                            .map(|&seed| {
                                replica.reseed_mc_streams(seed);
                                replica.forward_exits_from_activations(&activations, Mode::McSample)
                            })
                            .collect::<Result<Vec<Vec<Tensor>>, _>>()
                    })
                    .into_iter()
                    .collect::<Result<_, _>>()?;
                let mut per_worker = per_worker;
                (0..passes)
                    .map(|p| std::mem::take(&mut per_worker[p % workers][p / workers]))
                    .collect()
            } else {
                let mut collected = Vec::with_capacity(passes);
                for &seed in &pass_seeds {
                    plan.reseed_mc_streams(seed);
                    collected
                        .push(plan.forward_exits_from_activations(&activations, Mode::McSample)?);
                }
                collected
            };
        self.finish_prediction(pass_exits, passes, n_exits)
    }

    /// The unplanned prediction path: the layer chain with per-worker model
    /// replicas (networks with batch normalisation or residual blocks).
    fn predict_layered(
        &self,
        network: &mut MultiExitNetwork,
        inputs: &Tensor,
        n_exits: usize,
    ) -> Result<McPrediction, BayesError> {
        let passes = self.config.passes_for(n_exits).max(1);
        let activations = network.forward_backbone(inputs, Mode::Eval)?;
        let pass_seeds: Vec<u64> = (0..passes)
            .map(|p| stream_seed(self.config.seed, p as u64))
            .collect();

        let pass_exits: Vec<Vec<Tensor>> =
            if self.executor.threads() > 1 && passes > 1 && !in_parallel_region() {
                // Exit forward passes cache activations in &mut self, so
                // concurrent passes need separate instances — but only one
                // replica per *worker*, not per pass (replicate_n serialises
                // the checkpoint once). Worker w runs passes w, w+W, …; each
                // pass reseeds from its own stream, so the assignment does
                // not affect the result.
                let workers = self.executor.threads().min(passes);
                let mut replicas = network
                    .replicate_n(workers)
                    .map_err(|e| BayesError::Invalid(e.to_string()))?;
                let per_worker: Vec<Vec<Vec<Tensor>>> = self
                    .executor
                    .par_map_mut(&mut replicas, |w, replica| {
                        pass_seeds[w..]
                            .iter()
                            .step_by(workers)
                            .map(|&seed| {
                                replica.reseed_mc_streams(seed);
                                replica.forward_exits_from_activations(&activations, Mode::McSample)
                            })
                            .collect::<Result<Vec<Vec<Tensor>>, _>>()
                    })
                    .into_iter()
                    .collect::<Result<_, _>>()?;
                let mut per_worker = per_worker;
                (0..passes)
                    .map(|p| std::mem::take(&mut per_worker[p % workers][p / workers]))
                    .collect()
            } else {
                let mut collected = Vec::with_capacity(passes);
                for &seed in &pass_seeds {
                    network.reseed_mc_streams(seed);
                    collected.push(
                        network.forward_exits_from_activations(&activations, Mode::McSample)?,
                    );
                }
                collected
            };
        self.finish_prediction(pass_exits, passes, n_exits)
    }

    /// Shared tail of both prediction paths: softmax per sample, truncate to
    /// the requested sample count, average.
    fn finish_prediction(
        &self,
        pass_exits: Vec<Vec<Tensor>>,
        passes: usize,
        n_exits: usize,
    ) -> Result<McPrediction, BayesError> {
        let mut per_sample = Vec::with_capacity(passes * n_exits);
        for exits in pass_exits {
            for logits in exits {
                per_sample.push(softmax(&logits)?);
            }
        }
        // Keep exactly n_samples samples if the pass granularity overshot.
        if self.config.n_samples > 0 && per_sample.len() > self.config.n_samples {
            per_sample.truncate(self.config.n_samples);
        }
        let mean_probs = Tensor::mean_of(&per_sample)?;
        Ok(McPrediction {
            mean_probs,
            per_sample,
            passes,
        })
    }

    /// Vanilla single-exit MCD prediction: the whole network is re-run for
    /// every MC sample and only the final exit is used (paper Eq. 1).
    ///
    /// This is deliberately the paper's slow baseline and stays sequential,
    /// but each sample still draws from its own seeded mask stream, so the
    /// result is reproducible and matches any parallel re-implementation
    /// bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn predict_single_exit(
        &self,
        network: &mut dyn Network,
        inputs: &Tensor,
    ) -> Result<McPrediction, BayesError> {
        let samples = self.config.n_samples.max(1);
        let mut per_sample = Vec::with_capacity(samples);
        for s in 0..samples {
            network.reseed_mc_streams(stream_seed(self.config.seed, s as u64));
            let logits = network.forward_final(inputs, Mode::McSample)?;
            per_sample.push(softmax(&logits)?);
        }
        let mean_probs = Tensor::mean_of(&per_sample)?;
        Ok(McPrediction {
            mean_probs,
            per_sample,
            passes: samples,
        })
    }

    /// Deterministic (dropout-disabled) prediction of the final exit — the
    /// non-Bayesian baseline.
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn predict_deterministic(
        &self,
        network: &mut dyn Network,
        inputs: &Tensor,
    ) -> Result<Tensor, BayesError> {
        let logits = network.forward_final(inputs, Mode::Eval)?;
        Ok(softmax(&logits)?)
    }

    /// Confidence-threshold early exiting using the running ensemble of exits
    /// (the "largest possible ensemble at each exit" variant of the paper).
    ///
    /// Shorthand for [`McSampler::adaptive_exit_predict`] with
    /// [`ExitPolicy::Confidence`]: each sample stops at the first exit whose
    /// running-ensemble top-class probability reaches `threshold`.
    ///
    /// # Errors
    ///
    /// Propagates network errors or an invalid threshold.
    pub fn confidence_exit_predict(
        &self,
        network: &mut MultiExitNetwork,
        inputs: &Tensor,
        threshold: f64,
    ) -> Result<EarlyExitPrediction, BayesError> {
        self.adaptive_exit_predict(network, inputs, &ExitPolicy::Confidence { threshold })
    }

    /// Entropy-threshold early exiting: each sample stops at the first exit
    /// whose running-ensemble *normalized* predictive entropy drops to
    /// `threshold` or below (shorthand for [`McSampler::adaptive_exit_predict`]
    /// with [`ExitPolicy::Entropy`]).
    ///
    /// # Errors
    ///
    /// Propagates network errors or an invalid threshold.
    pub fn entropy_exit_predict(
        &self,
        network: &mut MultiExitNetwork,
        inputs: &Tensor,
        threshold: f64,
    ) -> Result<EarlyExitPrediction, BayesError> {
        self.adaptive_exit_predict(network, inputs, &ExitPolicy::Entropy { threshold })
    }

    /// Policy-driven early exiting using the running ensemble of exits.
    ///
    /// For each sample, exits are consulted in order; the running equally
    /// weighted ensemble of the exits seen so far is scored by `policy`
    /// ([`ExitPolicy::retires`]) and the sample stops at the first exit the
    /// policy accepts — or at the last exit unconditionally.
    ///
    /// Plannable networks execute on the compiled plan's adaptive batched
    /// path ([`bnn_models::MultiExitPlan::predict_adaptive_batch_into`]):
    /// retired samples leave the batch mid-flight and survivors are
    /// compacted into a dense smaller batch, so deeper blocks only ever see
    /// the stragglers. Networks that cannot plan (batch normalisation,
    /// residual blocks) fall back to a full-depth layer-chain sweep with the
    /// same per-row decisions; the returned bits are identical either way.
    ///
    /// # Errors
    ///
    /// Propagates network errors or an invalid policy threshold.
    pub fn adaptive_exit_predict(
        &self,
        network: &mut MultiExitNetwork,
        inputs: &Tensor,
        policy: &ExitPolicy,
    ) -> Result<EarlyExitPrediction, BayesError> {
        policy.validate().map_err(BayesError::Invalid)?;
        let n_exits = network.num_exits();
        if n_exits == 0 {
            return Err(BayesError::Invalid("network has no exits".into()));
        }
        let cumulative = exit_cumulative_flops_fraction(network)?;
        if inputs.dims().len() >= 2 {
            let planned = match network.cached_plan(&inputs.dims()[1..]) {
                Ok(plan) => {
                    let mut out = Vec::new();
                    let mut exit_taken = Vec::new();
                    // n_samples = 0: one deterministic (dropout-disabled)
                    // consult per exit — the historical early-exit
                    // semantics. The seed is unused in that mode.
                    let stats = plan.predict_adaptive_batch_into(
                        inputs,
                        0,
                        0,
                        policy,
                        &mut out,
                        &mut exit_taken,
                    )?;
                    Some((out, exit_taken, stats.batch, stats.classes))
                }
                Err(_) => None,
            };
            if let Some((out, exit_taken, batch, classes)) = planned {
                let flops_sum: f64 = exit_taken.iter().map(|&e| cumulative[e]).sum();
                return Ok(EarlyExitPrediction {
                    probs: Tensor::from_vec(out, &[batch, classes])?,
                    exit_taken,
                    mean_flops_fraction: flops_sum / batch.max(1) as f64,
                });
            }
        }
        self.adaptive_exit_layered(network, inputs, policy, n_exits, &cumulative)
    }

    /// The unplanned early-exit path: every exit of the layer chain runs at
    /// full depth, then the per-row policy sweep picks each sample's exit.
    /// Bit-identical to the plan's adaptive path (same kernels, same softmax
    /// rows, same accumulation order, same [`ExitPolicy::retires`] bits) —
    /// it just cannot skip the deeper blocks.
    fn adaptive_exit_layered(
        &self,
        network: &mut MultiExitNetwork,
        inputs: &Tensor,
        policy: &ExitPolicy,
        n_exits: usize,
        cumulative: &[f64],
    ) -> Result<EarlyExitPrediction, BayesError> {
        let exits = network.forward_exits(inputs, Mode::Eval)?;
        let probs_per_exit: Result<Vec<Tensor>, BayesError> = exits
            .iter()
            .map(|e| softmax(e).map_err(BayesError::from))
            .collect();
        let probs_per_exit = probs_per_exit?;
        let (batch, classes) = probs_per_exit[0].shape().as_matrix()?;

        let mut out = vec![0.0f32; batch * classes];
        let mut exit_taken = vec![0usize; batch];
        let mut flops_sum = 0.0f64;
        for b in 0..batch {
            let mut running = vec![0.0f32; classes];
            let mut chosen = n_exits - 1;
            for (i, exit_probs) in probs_per_exit.iter().enumerate() {
                let row = &exit_probs.as_slice()[b * classes..(b + 1) * classes];
                for (acc, &p) in running.iter_mut().zip(row) {
                    *acc += p;
                }
                let denom = (i + 1) as f32;
                if policy.retires(&running, denom) || i == n_exits - 1 {
                    chosen = i;
                    for c in 0..classes {
                        out[b * classes + c] = running[c] / denom;
                    }
                    break;
                }
            }
            exit_taken[b] = chosen;
            flops_sum += cumulative[chosen];
        }
        Ok(EarlyExitPrediction {
            probs: Tensor::from_vec(out, &[batch, classes])?,
            exit_taken,
            mean_flops_fraction: flops_sum / batch.max(1) as f64,
        })
    }
}

/// Cumulative FLOPs fraction of the full network consumed when a sample
/// stops at each exit (backbone blocks up to the exit's attachment point
/// plus every exit head consulted along the way).
fn exit_cumulative_flops_fraction(network: &MultiExitNetwork) -> Result<Vec<f64>, BayesError> {
    let report = network.spec().flop_report()?;
    let full = report.total().max(1) as f64;
    let block_flops = backbone_cumulative_flops(network)?;
    let mut cumulative = Vec::with_capacity(network.spec().exits.len());
    let mut exit_acc = 0u64;
    for (i, exit_spec) in network.spec().exits.iter().enumerate() {
        exit_acc += report.exits[i];
        cumulative.push((block_flops[exit_spec.after_block] + exit_acc) as f64 / full);
    }
    Ok(cumulative)
}

/// Cumulative backbone FLOPs up to and including each block (batch size 1).
fn backbone_cumulative_flops(network: &MultiExitNetwork) -> Result<Vec<u64>, BayesError> {
    let spec = network.spec();
    let mut shape = spec.input_shape(1);
    let mut acc = 0u64;
    let mut out = Vec::with_capacity(spec.blocks.len());
    for block in &spec.blocks {
        for layer in block {
            acc += layer.flops(&shape);
            shape = layer.output_shape(&shape)?;
        }
        out.push(acc);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_models::{zoo, ModelConfig};

    fn small_net() -> MultiExitNetwork {
        let config = ModelConfig::cifar10()
            .with_resolution(12, 12)
            .with_width_divisor(16);
        zoo::resnet18(&config)
            .with_exits_after_every_block()
            .unwrap()
            .with_exit_mcd(0.3)
            .unwrap()
            .build(11)
            .unwrap()
    }

    #[test]
    fn sampling_config_pass_arithmetic() {
        let cfg = SamplingConfig::new(8);
        assert_eq!(cfg.passes_for(4), 2);
        assert_eq!(cfg.passes_for(3), 3);
        assert_eq!(cfg.passes_for(0), 0);
        assert_eq!(SamplingConfig::default().n_samples, 4);
    }

    #[test]
    fn multi_exit_prediction_shape_and_simplex() {
        let mut net = small_net();
        let sampler = McSampler::new(SamplingConfig::new(8));
        let x = Tensor::ones(&[3, 3, 12, 12]);
        let pred = sampler.predict(&mut net, &x).unwrap();
        assert_eq!(pred.mean_probs.dims(), &[3, 10]);
        assert_eq!(pred.num_samples(), 8);
        assert_eq!(pred.passes, 2);
        // rows sum to one
        for b in 0..3 {
            let s: f32 = pred.mean_probs.as_slice()[b * 10..(b + 1) * 10]
                .iter()
                .sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn samples_vary_across_passes() {
        let mut net = small_net();
        let sampler = McSampler::new(SamplingConfig::new(8));
        let x = Tensor::ones(&[1, 3, 12, 12]);
        let pred = sampler.predict(&mut net, &x).unwrap();
        let a = pred.per_sample[0].as_slice();
        let b = pred.per_sample[4].as_slice(); // same exit, next pass
        assert_ne!(a, b);
    }

    fn small_lenet() -> MultiExitNetwork {
        let config = ModelConfig::mnist()
            .with_resolution(10, 10)
            .with_width_divisor(8)
            .with_classes(4);
        zoo::lenet5(&config)
            .with_exits_after_every_block()
            .unwrap()
            .with_exit_mcd(0.25)
            .unwrap()
            .build(13)
            .unwrap()
    }

    #[test]
    fn planned_prediction_matches_layered_bitwise() {
        // LeNet compiles to a plan; the planned fast path (engaged by the
        // multi-threaded executor) must reproduce the layer-chain path bit
        // for bit, mean and per-sample alike.
        let mut net_planned = small_lenet();
        let mut net_layered = small_lenet();
        let mut rng = bnn_tensor::rng::Xoshiro256StarStar::seed_from_u64(21);
        let x = Tensor::randn(&[3, 1, 10, 10], &mut rng);
        let sampler = McSampler::new(SamplingConfig::new(8)).with_executor(Executor::new(4));
        let planned = sampler.predict(&mut net_planned, &x).unwrap();
        let n_exits = net_layered.num_exits();
        let layered = sampler
            .predict_layered(&mut net_layered, &x, n_exits)
            .unwrap();
        assert_eq!(planned.mean_probs.as_slice(), layered.mean_probs.as_slice());
        assert_eq!(planned.per_sample.len(), layered.per_sample.len());
        for (a, b) in planned.per_sample.iter().zip(&layered.per_sample) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        // The residual model cannot plan and silently takes the layer path —
        // the public API behaves identically for it (covered by the other
        // tests, which use resnet18).
        assert!(small_net().compile_plan(&[3, 12, 12]).is_err());
    }

    #[test]
    fn cached_plan_predictions_stay_bitwise_and_track_mutations() {
        // Repeat predictions hit the network's cached plan (no recompile);
        // the results must stay bitwise identical to the first call, and a
        // weight mutation must invalidate the cache rather than serve stale
        // packed weights.
        let mut net = small_lenet();
        let mut rng = bnn_tensor::rng::Xoshiro256StarStar::seed_from_u64(31);
        let x = Tensor::randn(&[2, 1, 10, 10], &mut rng);
        let sampler = McSampler::new(SamplingConfig::new(8)).with_executor(Executor::new(2));
        let first = sampler.predict(&mut net, &x).unwrap();
        let v_after_first = net.weight_version();
        let second = sampler.predict(&mut net, &x).unwrap();
        assert_eq!(net.weight_version(), v_after_first, "predict must not bump");
        assert_eq!(first.mean_probs.as_slice(), second.mean_probs.as_slice());
        for (a, b) in first.per_sample.iter().zip(&second.per_sample) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        // Mutate a weight through the public params_mut path.
        {
            use bnn_nn::network::Network as _;
            let mut params = net.params_mut();
            params[0].value.as_mut_slice()[0] += 0.5;
        }
        assert_ne!(net.weight_version(), v_after_first);
        let third = sampler.predict(&mut net, &x).unwrap();
        assert_ne!(first.mean_probs.as_slice(), third.mean_probs.as_slice());
        // A freshly built network with the same mutation agrees with the
        // post-mutation prediction, proving the cache was not stale.
        let mut fresh = small_lenet();
        {
            use bnn_nn::network::Network as _;
            let mut params = fresh.params_mut();
            params[0].value.as_mut_slice()[0] += 0.5;
        }
        let fresh_pred = sampler.predict(&mut fresh, &x).unwrap();
        assert_eq!(
            third.mean_probs.as_slice(),
            fresh_pred.mean_probs.as_slice()
        );
    }

    #[test]
    fn parallel_sampling_matches_sequential_bitwise() {
        let mut net_seq = small_net();
        let mut net_par = small_net();
        let x = Tensor::ones(&[3, 3, 12, 12]);
        let seq = McSampler::new(SamplingConfig::new(8)).with_executor(Executor::sequential());
        let par = McSampler::new(SamplingConfig::new(8)).with_executor(Executor::new(4));
        let a = seq.predict(&mut net_seq, &x).unwrap();
        let b = par.predict(&mut net_par, &x).unwrap();
        assert_eq!(a.mean_probs.as_slice(), b.mean_probs.as_slice());
        assert_eq!(a.per_sample.len(), b.per_sample.len());
        for (sa, sb) in a.per_sample.iter().zip(&b.per_sample) {
            assert_eq!(sa.as_slice(), sb.as_slice());
        }
    }

    #[test]
    fn predictions_are_seed_reproducible() {
        let mut net = small_net();
        let x = Tensor::ones(&[2, 3, 12, 12]);
        let sampler = McSampler::new(SamplingConfig::new(6));
        let a = sampler.predict(&mut net, &x).unwrap();
        let b = sampler.predict(&mut net, &x).unwrap();
        assert_eq!(a.mean_probs.as_slice(), b.mean_probs.as_slice());
        let other = McSampler::new(SamplingConfig::new(6).with_seed(7));
        let c = other.predict(&mut net, &x).unwrap();
        assert_ne!(a.mean_probs.as_slice(), c.mean_probs.as_slice());
    }

    #[test]
    fn single_exit_prediction_uses_requested_samples() {
        let mut net = small_net();
        let sampler = McSampler::new(SamplingConfig::new(5));
        let x = Tensor::ones(&[2, 3, 12, 12]);
        let pred = sampler.predict_single_exit(&mut net, &x).unwrap();
        assert_eq!(pred.num_samples(), 5);
        assert_eq!(pred.mean_probs.dims(), &[2, 10]);
    }

    #[test]
    fn deterministic_prediction_is_repeatable() {
        let mut net = small_net();
        let sampler = McSampler::default();
        let x = Tensor::ones(&[1, 3, 12, 12]);
        let a = sampler.predict_deterministic(&mut net, &x).unwrap();
        let b = sampler.predict_deterministic(&mut net, &x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn confidence_exit_reduces_flops_at_low_threshold() {
        let mut net = small_net();
        let sampler = McSampler::default();
        let x = Tensor::ones(&[4, 3, 12, 12]);
        let eager = sampler.confidence_exit_predict(&mut net, &x, 0.0).unwrap();
        let strict = sampler
            .confidence_exit_predict(&mut net, &x, 0.999_999)
            .unwrap();
        // threshold 0 stops at the first exit; threshold ~1 runs to the end
        assert!(eager.exit_taken.iter().all(|&e| e == 0));
        assert!(strict.exit_taken.iter().all(|&e| e == net.num_exits() - 1));
        assert!(eager.mean_flops_fraction < strict.mean_flops_fraction);
        assert!(eager.mean_flops_fraction > 0.0);
        assert!(strict.mean_flops_fraction <= 1.0 + 1e-9);
        assert!(sampler.confidence_exit_predict(&mut net, &x, 1.5).is_err());
    }

    #[test]
    fn adaptive_plan_path_matches_layered_fallback_bitwise() {
        // LeNet compiles, so the public API takes the plan's adaptive
        // batched path (with mid-flight compaction); forcing the layered
        // full-depth sweep must give the same bits, exits and FLOPs.
        let mut rng = bnn_tensor::rng::Xoshiro256StarStar::seed_from_u64(41);
        let x = Tensor::randn(&[5, 1, 10, 10], &mut rng);
        let sampler = McSampler::default();
        for policy in [
            ExitPolicy::Never,
            ExitPolicy::Confidence { threshold: 0.3 },
            ExitPolicy::Confidence { threshold: 0.0 },
            ExitPolicy::Entropy { threshold: 0.97 },
        ] {
            let mut net = small_lenet();
            let planned = sampler
                .adaptive_exit_predict(&mut net, &x, &policy)
                .unwrap();
            let mut net_layered = small_lenet();
            let n_exits = net_layered.num_exits();
            let cumulative = exit_cumulative_flops_fraction(&net_layered).unwrap();
            let layered = sampler
                .adaptive_exit_layered(&mut net_layered, &x, &policy, n_exits, &cumulative)
                .unwrap();
            assert_eq!(
                planned.probs.as_slice(),
                layered.probs.as_slice(),
                "policy {policy}"
            );
            assert_eq!(planned.exit_taken, layered.exit_taken, "policy {policy}");
            assert_eq!(
                planned.mean_flops_fraction, layered.mean_flops_fraction,
                "policy {policy}"
            );
        }
    }

    #[test]
    fn entropy_exit_mirrors_confidence_behaviour() {
        // Normalized entropy is always <= 1 and > 0 for non-degenerate
        // rows, so threshold 1 retires everything at exit 0 and threshold 0
        // runs everything to the last exit.
        let mut net = small_net();
        let sampler = McSampler::default();
        let x = Tensor::ones(&[4, 3, 12, 12]);
        let eager = sampler.entropy_exit_predict(&mut net, &x, 1.0).unwrap();
        let strict = sampler.entropy_exit_predict(&mut net, &x, 0.0).unwrap();
        assert!(eager.exit_taken.iter().all(|&e| e == 0));
        assert!(strict.exit_taken.iter().all(|&e| e == net.num_exits() - 1));
        assert!(eager.mean_flops_fraction < strict.mean_flops_fraction);
        assert!(sampler
            .entropy_exit_predict(&mut net, &x, f64::NAN)
            .is_err());
        assert!(sampler.entropy_exit_predict(&mut net, &x, -0.5).is_err());
    }

    #[test]
    fn early_exit_probs_are_distributions() {
        let mut net = small_net();
        let sampler = McSampler::default();
        let x = Tensor::ones(&[2, 3, 12, 12]);
        let pred = sampler.confidence_exit_predict(&mut net, &x, 0.5).unwrap();
        for b in 0..2 {
            let s: f32 = pred.probs.as_slice()[b * 10..(b + 1) * 10].iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }
}
