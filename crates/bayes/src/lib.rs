//! # bnn-bayes
//!
//! Bayesian inference utilities for the paper reproduction:
//!
//! * [`sampling`] — Monte-Carlo Dropout prediction for multi-exit networks,
//!   including the backbone-caching optimisation that makes multi-exit MC
//!   sampling cheap (paper Eq. 2), and confidence-threshold early exiting.
//! * [`ensemble`] — the deep-ensemble baseline the paper compares calibration
//!   against.
//! * [`metrics`] — accuracy, expected calibration error (ECE), maximum
//!   calibration error, negative log-likelihood, Brier score, predictive
//!   entropy and mutual information.
//! * [`evaluation`] — a single-call summary ([`evaluation::Evaluation`]) used
//!   by Table I and the examples.
//! * [`flops_analysis`] — the Eq. 1–3 sampling-cost model and sweeps.
//!
//! # Example
//!
//! ```
//! use bnn_bayes::metrics::expected_calibration_error;
//! use bnn_tensor::Tensor;
//!
//! # fn main() -> Result<(), bnn_bayes::BayesError> {
//! let probs = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2])?;
//! let ece = expected_calibration_error(&probs, &[0, 1], 10)?;
//! assert!(ece < 0.2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ensemble;
pub mod error;
pub mod evaluation;
pub mod flops_analysis;
pub mod metrics;
pub mod sampling;

pub use error::BayesError;
pub use evaluation::Evaluation;
pub use sampling::{McPrediction, McSampler, SamplingConfig};
