//! Sampling-cost analysis (paper Eqs. 1–3).
//!
//! The closed-form formulas live in [`bnn_nn::flops`]; this module ties them to
//! concrete [`NetworkSpec`]s and provides the parameter sweeps the benchmark
//! harness prints.

use crate::BayesError;
use bnn_models::NetworkSpec;
use bnn_nn::flops::{
    flop_reduction_rate, multi_exit_sampling_flops, single_exit_sampling_flops, FlopReport,
};

/// One row of a sampling-cost sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionPoint {
    /// Number of MC samples drawn.
    pub n_samples: u64,
    /// Number of exits in the multi-exit network.
    pub n_exits: u64,
    /// The exit/backbone FLOP ratio alpha.
    pub alpha: f64,
    /// FLOPs of single-exit sampling (Eq. 1).
    pub single_exit_flops: u64,
    /// FLOPs of multi-exit sampling (Eq. 2).
    pub multi_exit_flops: u64,
    /// Analytic reduction rate (Eq. 3).
    pub reduction_rate: f64,
}

/// Sampling-cost analysis bound to a specific multi-exit architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingCostModel {
    report: FlopReport,
}

impl SamplingCostModel {
    /// Builds the cost model from a network spec's FLOP breakdown.
    ///
    /// # Errors
    ///
    /// Propagates shape-propagation errors from the spec.
    pub fn from_spec(spec: &NetworkSpec) -> Result<Self, BayesError> {
        Ok(SamplingCostModel {
            report: spec.flop_report()?,
        })
    }

    /// The underlying FLOP breakdown.
    pub fn report(&self) -> &FlopReport {
        &self.report
    }

    /// Cost comparison for drawing `n_samples` MC samples.
    pub fn point(&self, n_samples: u64) -> ReductionPoint {
        let n_exits = self.report.num_exits().max(1) as u64;
        let mean_exit = self.report.exit_total() / n_exits.max(1);
        let single = single_exit_sampling_flops(self.report.main_body, mean_exit, n_samples);
        let multi = multi_exit_sampling_flops(
            self.report.main_body,
            self.report.exit_total(),
            n_samples,
            n_exits,
        );
        ReductionPoint {
            n_samples,
            n_exits,
            alpha: self.report.alpha(),
            single_exit_flops: single,
            multi_exit_flops: multi,
            reduction_rate: flop_reduction_rate(
                self.report.alpha(),
                n_samples as f64,
                n_exits as f64,
            ),
        }
    }

    /// Sweeps the number of MC samples and returns one [`ReductionPoint`] per value.
    pub fn sweep(&self, sample_counts: &[u64]) -> Vec<ReductionPoint> {
        sample_counts.iter().map(|&n| self.point(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_models::{zoo, ModelConfig};

    fn multi_exit_spec() -> NetworkSpec {
        zoo::resnet18(
            &ModelConfig::cifar100()
                .with_resolution(16, 16)
                .with_width_divisor(8),
        )
        .with_exits_after_every_block()
        .unwrap()
    }

    #[test]
    fn reduction_grows_with_sample_count() {
        let model = SamplingCostModel::from_spec(&multi_exit_spec()).unwrap();
        let sweep = model.sweep(&[1, 2, 4, 8, 16]);
        assert_eq!(sweep.len(), 5);
        for pair in sweep.windows(2) {
            assert!(pair[1].reduction_rate >= pair[0].reduction_rate);
        }
        // With more samples than exits, multi-exit must be cheaper.
        let p = model.point(16);
        assert!(p.multi_exit_flops < p.single_exit_flops);
        assert!(p.reduction_rate > 1.0);
    }

    #[test]
    fn measured_ratio_tracks_analytic_rate() {
        let model = SamplingCostModel::from_spec(&multi_exit_spec()).unwrap();
        let p = model.point(8);
        let measured = p.single_exit_flops as f64 / p.multi_exit_flops as f64;
        // Eq. 3 assumes n_samples divisible by n_exits and a uniform per-exit
        // cost; the measured ratio should still be within ~25 %.
        assert!(
            (measured - p.reduction_rate).abs() / p.reduction_rate < 0.25,
            "measured {measured} vs analytic {}",
            p.reduction_rate
        );
    }

    #[test]
    fn alpha_matches_report() {
        let spec = multi_exit_spec();
        let model = SamplingCostModel::from_spec(&spec).unwrap();
        assert!((model.point(4).alpha - model.report().alpha()).abs() < 1e-12);
    }
}
