//! Signed fixed-point formats (`ap_fixed<W, I>` style).

use crate::QuantError;

/// A signed fixed-point format with `total_bits` total bits, of which
/// `integer_bits` (including the sign bit) sit left of the binary point.
///
/// This mirrors Vivado-HLS `ap_fixed<W, I>` with round-to-nearest and
/// saturation, the configuration used by hls4ml-style designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedPointFormat {
    total_bits: u32,
    integer_bits: u32,
}

impl FixedPointFormat {
    /// Creates a format with `total_bits` total and `integer_bits` integer bits.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidFormat`] if `total_bits` is zero, greater
    /// than 32, or smaller than `integer_bits`.
    pub fn new(total_bits: u32, integer_bits: u32) -> Result<Self, QuantError> {
        if total_bits == 0 || total_bits > 32 {
            return Err(QuantError::InvalidFormat(format!(
                "total bits must be in 1..=32, got {total_bits}"
            )));
        }
        if integer_bits > total_bits {
            return Err(QuantError::InvalidFormat(format!(
                "integer bits {integer_bits} exceed total bits {total_bits}"
            )));
        }
        Ok(FixedPointFormat {
            total_bits,
            integer_bits,
        })
    }

    /// The paper's Phase 3 search space: `ap_fixed<4,2>`, `<6,2>`, `<8,3>`, `<16,6>`.
    pub fn search_space() -> Vec<FixedPointFormat> {
        vec![
            FixedPointFormat {
                total_bits: 4,
                integer_bits: 2,
            },
            FixedPointFormat {
                total_bits: 6,
                integer_bits: 2,
            },
            FixedPointFormat {
                total_bits: 8,
                integer_bits: 3,
            },
            FixedPointFormat {
                total_bits: 16,
                integer_bits: 6,
            },
        ]
    }

    /// The default hls4ml-style format, `ap_fixed<16,6>`.
    pub fn default_hls() -> Self {
        FixedPointFormat {
            total_bits: 16,
            integer_bits: 6,
        }
    }

    /// Total bit width.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Integer bits (including sign).
    pub fn integer_bits(&self) -> u32 {
        self.integer_bits
    }

    /// Fractional bits.
    pub fn fractional_bits(&self) -> u32 {
        self.total_bits - self.integer_bits
    }

    /// Smallest representable step.
    pub fn epsilon(&self) -> f32 {
        2f32.powi(-(self.fractional_bits() as i32))
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f32 {
        2f32.powi(self.integer_bits as i32 - 1) - self.epsilon()
    }

    /// Smallest (most negative) representable value.
    pub fn min_value(&self) -> f32 {
        -(2f32.powi(self.integer_bits as i32 - 1))
    }

    /// Quantizes a value: round to nearest representable step, saturate at the
    /// format's range.
    pub fn quantize(&self, value: f32) -> f32 {
        let scale = 2f32.powi(self.fractional_bits() as i32);
        let q = (value * scale).round() / scale;
        q.clamp(self.min_value(), self.max_value())
    }

    /// Quantizes a whole slice in place.
    pub fn quantize_slice(&self, values: &mut [f32]) {
        for v in values {
            *v = self.quantize(*v);
        }
    }
}

impl std::fmt::Display for FixedPointFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ap_fixed<{},{}>", self.total_bits, self.integer_bits)
    }
}

/// Error statistics of quantizing a collection of values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuantizationError {
    /// Maximum absolute error.
    pub max_abs: f32,
    /// Mean squared error.
    pub mse: f32,
}

impl QuantizationError {
    /// Measures the error of quantizing `values` with `format`.
    pub fn measure(values: &[f32], format: FixedPointFormat) -> Self {
        if values.is_empty() {
            return QuantizationError::default();
        }
        let mut max_abs = 0.0f32;
        let mut sse = 0.0f64;
        for &v in values {
            let err = (format.quantize(v) - v).abs();
            max_abs = max_abs.max(err);
            sse += (err as f64) * (err as f64);
        }
        QuantizationError {
            max_abs,
            mse: (sse / values.len() as f64) as f32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_validation() {
        assert!(FixedPointFormat::new(0, 0).is_err());
        assert!(FixedPointFormat::new(8, 9).is_err());
        assert!(FixedPointFormat::new(33, 4).is_err());
        assert!(FixedPointFormat::new(8, 3).is_ok());
    }

    #[test]
    fn range_and_epsilon() {
        let q = FixedPointFormat::new(8, 3).unwrap(); // 5 fractional bits
        assert_eq!(q.fractional_bits(), 5);
        assert!((q.epsilon() - 1.0 / 32.0).abs() < 1e-9);
        assert!((q.max_value() - (4.0 - 1.0 / 32.0)).abs() < 1e-9);
        assert!((q.min_value() + 4.0).abs() < 1e-9);
    }

    #[test]
    fn quantize_rounds_and_saturates() {
        let q = FixedPointFormat::new(8, 3).unwrap();
        assert_eq!(q.quantize(0.3751), 0.375);
        assert_eq!(q.quantize(1000.0), q.max_value());
        assert_eq!(q.quantize(-1000.0), q.min_value());
        assert_eq!(q.quantize(0.0), 0.0);
    }

    #[test]
    fn wider_formats_have_smaller_error() {
        let values: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).sin()).collect();
        let e4 = QuantizationError::measure(&values, FixedPointFormat::new(4, 2).unwrap());
        let e8 = QuantizationError::measure(&values, FixedPointFormat::new(8, 3).unwrap());
        let e16 = QuantizationError::measure(&values, FixedPointFormat::new(16, 6).unwrap());
        assert!(e8.mse < e4.mse);
        assert!(e16.mse < e8.mse);
        assert!(e16.max_abs < e4.max_abs);
    }

    #[test]
    fn search_space_matches_paper() {
        let space = FixedPointFormat::search_space();
        let widths: Vec<u32> = space.iter().map(|f| f.total_bits()).collect();
        assert_eq!(widths, vec![4, 6, 8, 16]);
    }

    #[test]
    fn display_format() {
        assert_eq!(
            FixedPointFormat::new(8, 3).unwrap().to_string(),
            "ap_fixed<8,3>"
        );
        assert_eq!(
            FixedPointFormat::default_hls().to_string(),
            "ap_fixed<16,6>"
        );
    }

    #[test]
    fn empty_slice_error_is_zero() {
        let e = QuantizationError::measure(&[], FixedPointFormat::default_hls());
        assert_eq!(e.max_abs, 0.0);
        assert_eq!(e.mse, 0.0);
    }

    // Deterministic sweeps standing in for the original proptest properties
    // (proptest is unavailable in the offline build environment).
    #[test]
    fn quantize_error_bounded_by_half_epsilon_in_range() {
        let q = FixedPointFormat::new(8, 3).unwrap();
        for i in 0..=10_000 {
            let v = -3.9f32 + 7.8 * (i as f32 / 10_000.0);
            let err = (q.quantize(v) - v).abs();
            assert!(err <= q.epsilon() / 2.0 + 1e-6, "v={v} err={err}");
        }
    }

    #[test]
    fn quantize_is_idempotent() {
        let q = FixedPointFormat::new(6, 2).unwrap();
        for i in 0..=10_000 {
            let v = -100.0f32 + 200.0 * (i as f32 / 10_000.0);
            let once = q.quantize(v);
            assert_eq!(once, q.quantize(once), "v={v}");
        }
    }
}
