//! Error type for quantization.

use std::error::Error;
use std::fmt;

/// Error returned by quantization configuration, calibration, lowering and
/// search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// The fixed-point format is invalid (zero width, integer bits > width, ...).
    InvalidFormat(String),
    /// A search was configured with no candidates or an invalid tolerance.
    InvalidSearch(String),
    /// The requested lowering is not supported by the integer path (a layer
    /// without an inference lowering, or a format wider than 16 bits).
    Unsupported(String),
    /// Calibration or quantization encountered a NaN or infinite value,
    /// which has no fixed-point representation.
    NonFinite(String),
    /// An internal shape or tensor-operation failure while executing the
    /// quantized graph.
    Internal(String),
    /// A caller-supplied input batch was malformed: empty, or its shape does
    /// not match the input shape the plan was compiled for. This is the
    /// serving-path error — malformed requests must surface as a typed,
    /// recoverable error rather than a panic or a silently mis-shaped
    /// output.
    InvalidInput(String),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::InvalidFormat(msg) => write!(f, "invalid fixed-point format: {msg}"),
            QuantError::InvalidSearch(msg) => write!(f, "invalid bitwidth search: {msg}"),
            QuantError::Unsupported(msg) => write!(f, "unsupported integer lowering: {msg}"),
            QuantError::NonFinite(msg) => write!(f, "non-finite value: {msg}"),
            QuantError::Internal(msg) => write!(f, "internal quantization error: {msg}"),
            QuantError::InvalidInput(msg) => write!(f, "invalid inference input: {msg}"),
        }
    }
}

impl Error for QuantError {}

impl From<bnn_tensor::TensorError> for QuantError {
    fn from(e: bnn_tensor::TensorError) -> Self {
        QuantError::Internal(e.to_string())
    }
}

impl From<bnn_nn::NnError> for QuantError {
    fn from(e: bnn_nn::NnError) -> Self {
        match e {
            bnn_nn::NnError::UnsupportedLowering { layer } => {
                QuantError::Unsupported(format!("layer `{layer}` has no inference lowering"))
            }
            other => QuantError::Internal(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(QuantError::InvalidFormat("w".into())
            .to_string()
            .contains("w"));
        assert!(QuantError::InvalidSearch("s".into())
            .to_string()
            .contains("s"));
        assert!(QuantError::Unsupported("softmax".into())
            .to_string()
            .contains("softmax"));
        assert!(QuantError::NonFinite("NaN".into())
            .to_string()
            .contains("NaN"));
        assert!(QuantError::Internal("shape".into())
            .to_string()
            .contains("shape"));
        assert!(QuantError::InvalidInput("empty batch".into())
            .to_string()
            .contains("empty batch"));
    }

    #[test]
    fn nn_lowering_errors_map_to_unsupported() {
        let e = QuantError::from(bnn_nn::NnError::UnsupportedLowering {
            layer: "softmax".into(),
        });
        assert!(matches!(e, QuantError::Unsupported(_)));
        let e = QuantError::from(bnn_nn::NnError::InvalidConfig("x".into()));
        assert!(matches!(e, QuantError::Internal(_)));
    }
}
