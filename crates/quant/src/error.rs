//! Error type for quantization.

use std::error::Error;
use std::fmt;

/// Error returned by quantization configuration and search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// The fixed-point format is invalid (zero width, integer bits > width, ...).
    InvalidFormat(String),
    /// A search was configured with no candidates or an invalid tolerance.
    InvalidSearch(String),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::InvalidFormat(msg) => write!(f, "invalid fixed-point format: {msg}"),
            QuantError::InvalidSearch(msg) => write!(f, "invalid bitwidth search: {msg}"),
        }
    }
}

impl Error for QuantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(QuantError::InvalidFormat("w".into())
            .to_string()
            .contains("w"));
        assert!(QuantError::InvalidSearch("s".into())
            .to_string()
            .contains("s"));
    }
}
