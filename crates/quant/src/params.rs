//! Per-tensor quantization parameters: the bridge between an `ap_fixed`
//! format and its integer-code representation.
//!
//! A [`FixedPointFormat`] `ap_fixed<W, I>` is *exactly* a symmetric integer
//! quantization scheme: every representable value is `code * 2^-(W-I)` for an
//! integer `code` in `[-2^(W-1), 2^(W-1) - 1]`. [`QuantParams`] makes that
//! correspondence explicit — scale (a power of two), zero-point (always 0 by
//! construction) and the saturating code range — and adds range calibration:
//! choosing the integer-bit split of a `W`-bit format so that an observed
//! tensor fits with minimal quantization step.
//!
//! Because every scale is a power of two, rescaling between two formats is an
//! exact rounding bit-shift (see [`bnn_tensor::int::round_shift`]); no
//! approximate fixed-point multipliers are needed anywhere in the datapath.

use crate::error::QuantError;
use crate::fixed::FixedPointFormat;

/// Integer storage width of a quantized tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntWidth {
    /// 8-bit storage (`i8` codes) for formats of at most 8 total bits.
    W8,
    /// 16-bit storage (`i16` codes) for formats of 9 to 16 total bits.
    W16,
}

/// Quantization parameters of one tensor: a [`FixedPointFormat`] viewed as a
/// symmetric integer scheme.
///
/// # Example
///
/// ```
/// use bnn_quant::{FixedPointFormat, QuantParams};
///
/// # fn main() -> Result<(), bnn_quant::QuantError> {
/// let p = QuantParams::new(FixedPointFormat::new(8, 3)?)?;
/// assert_eq!(p.scale(), 1.0 / 32.0); // 5 fractional bits
/// assert_eq!(p.zero_point(), 0);
/// assert_eq!((p.qmin(), p.qmax()), (-128, 127));
/// assert_eq!(p.quantize_value(0.3751), 12); // 12/32 = 0.375
/// assert_eq!(p.quantize_value(100.0), 127); // saturates
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantParams {
    format: FixedPointFormat,
}

impl QuantParams {
    /// Wraps a format of at most 16 total bits.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Unsupported`] for formats wider than 16 bits —
    /// the integer path stores codes as `i8`/`i16`; wider formats are served
    /// by the float fake-quantization path.
    pub fn new(format: FixedPointFormat) -> Result<Self, QuantError> {
        if format.total_bits() > 16 {
            return Err(QuantError::Unsupported(format!(
                "integer storage supports at most 16 total bits, got {format}"
            )));
        }
        Ok(QuantParams { format })
    }

    /// Calibrates a `total_bits`-wide format over observed values: the
    /// smallest integer-bit allocation whose range covers them (saturating
    /// at `total_bits` integer bits if nothing fits). The positive and
    /// negative extremes are checked separately — the grid is asymmetric by
    /// one step (`min = -2^(I-1)` is representable, `+2^(I-1)` is not), so
    /// a tensor whose extreme is a negative power of two still gets the
    /// tight allocation.
    /// An empty slice calibrates to zero integer bits.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::NonFinite`] if any value is NaN or infinite, or
    /// [`QuantError::Unsupported`]/[`QuantError::InvalidFormat`] for an
    /// unsupported width.
    pub fn calibrate(total_bits: u32, values: &[f32]) -> Result<Self, QuantError> {
        let mut max = 0.0f32;
        let mut min = 0.0f32;
        for &v in values {
            if !v.is_finite() {
                return Err(QuantError::NonFinite(format!(
                    "cannot calibrate over non-finite value {v}"
                )));
            }
            max = max.max(v);
            min = min.min(v);
        }
        QuantParams::from_range(total_bits, min, max)
    }

    /// [`QuantParams::calibrate`] from a pre-computed value range `[min, max]`
    /// (with `min <= 0 <= max`, as produced by observing values against a
    /// zero-initialised range). This is what lets calibration run **once**
    /// per model — the observed ranges are recorded and a `QuantParams` is
    /// derived from the same record for every candidate total width.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::NonFinite`] for a non-finite bound, or
    /// [`QuantError::Unsupported`]/[`QuantError::InvalidFormat`] for an
    /// unsupported width.
    pub fn from_range(total_bits: u32, min: f32, max: f32) -> Result<Self, QuantError> {
        if !min.is_finite() || !max.is_finite() {
            return Err(QuantError::NonFinite(format!(
                "cannot calibrate over non-finite range [{min}, {max}]"
            )));
        }
        for integer_bits in 0..=total_bits {
            let format = FixedPointFormat::new(total_bits, integer_bits)?;
            if format.max_value() >= max && format.min_value() <= min {
                return QuantParams::new(format);
            }
        }
        QuantParams::new(FixedPointFormat::new(total_bits, total_bits)?)
    }

    /// The underlying fixed-point format.
    pub fn format(&self) -> FixedPointFormat {
        self.format
    }

    /// The quantization step, `2^-fractional_bits` — always a power of two.
    pub fn scale(&self) -> f32 {
        self.format.epsilon()
    }

    /// The zero-point. Always 0: `ap_fixed` grids are symmetric around zero,
    /// so padding, ReLU and accumulation need no offset corrections.
    pub fn zero_point(&self) -> i64 {
        0
    }

    /// Number of fractional bits (the binary log of `1 / scale`).
    pub fn fractional_bits(&self) -> u32 {
        self.format.fractional_bits()
    }

    /// Smallest representable code, `-2^(W-1)`.
    pub fn qmin(&self) -> i64 {
        -(1i64 << (self.format.total_bits() - 1))
    }

    /// Largest representable code, `2^(W-1) - 1`.
    pub fn qmax(&self) -> i64 {
        (1i64 << (self.format.total_bits() - 1)) - 1
    }

    /// The storage width codes of this format occupy.
    pub fn width(&self) -> IntWidth {
        if self.format.total_bits() <= 8 {
            IntWidth::W8
        } else {
            IntWidth::W16
        }
    }

    /// Quantizes one value to its integer code: round to nearest (ties away
    /// from zero), then saturate into `[qmin, qmax]`.
    pub fn quantize_value(&self, value: f32) -> i64 {
        let code = (value / self.scale()).round() as i64;
        code.clamp(self.qmin(), self.qmax())
    }

    /// Reconstructs the real value of an integer code.
    pub fn dequantize_value(&self, code: i64) -> f32 {
        code as f32 * self.scale()
    }

    /// Fake-quantizes one value: quantize then dequantize, staying in `f32`.
    /// Identical to [`FixedPointFormat::quantize`] of the wrapped format.
    pub fn fake_quantize(&self, value: f32) -> f32 {
        self.dequantize_value(self.quantize_value(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_mirror_format_grid() {
        let p = QuantParams::new(FixedPointFormat::new(6, 2).unwrap()).unwrap();
        assert_eq!(p.fractional_bits(), 4);
        assert_eq!((p.qmin(), p.qmax()), (-32, 31));
        assert_eq!(p.width(), IntWidth::W8);
        for i in -200..=200 {
            let v = i as f32 * 0.017;
            assert_eq!(
                p.dequantize_value(p.quantize_value(v)),
                p.format().quantize(v)
            );
        }
    }

    #[test]
    fn sixteen_bit_formats_use_wide_storage() {
        let p = QuantParams::new(FixedPointFormat::new(16, 6).unwrap()).unwrap();
        assert_eq!(p.width(), IntWidth::W16);
        assert_eq!((p.qmin(), p.qmax()), (-32768, 32767));
        assert!(QuantParams::new(FixedPointFormat::new(24, 8).unwrap()).is_err());
    }

    #[test]
    fn calibration_picks_smallest_covering_range() {
        // abs max 3.2 needs 3 integer bits at width 8 (max 3.97)
        let p = QuantParams::calibrate(8, &[0.5, -3.2, 1.0]).unwrap();
        assert_eq!(p.format().integer_bits(), 3);
        // sub-half values fit with zero integer bits
        let p = QuantParams::calibrate(8, &[0.1, -0.2]).unwrap();
        assert_eq!(p.format().integer_bits(), 0);
        // an empty slice needs no integer bits at all
        let p = QuantParams::calibrate(8, &[]).unwrap();
        assert_eq!(p.format().integer_bits(), 0);
        // enormous values saturate the allocation rather than failing
        let p = QuantParams::calibrate(8, &[1e9]).unwrap();
        assert_eq!(p.format().integer_bits(), 8);
        // the negative range reaches one step further than the positive:
        // -4.0 is exactly representable at I=3 while +4.0 needs I=4
        let p = QuantParams::calibrate(8, &[-4.0, 3.0]).unwrap();
        assert_eq!(p.format().integer_bits(), 3);
        let p = QuantParams::calibrate(8, &[4.0, 3.0]).unwrap();
        assert_eq!(p.format().integer_bits(), 4);
        assert!(QuantParams::calibrate(8, &[f32::NAN]).is_err());
        assert!(QuantParams::calibrate(8, &[f32::INFINITY]).is_err());
    }

    #[test]
    fn quantize_saturates_at_code_range() {
        let p = QuantParams::new(FixedPointFormat::new(4, 2).unwrap()).unwrap();
        assert_eq!(p.quantize_value(1000.0), p.qmax());
        assert_eq!(p.quantize_value(-1000.0), p.qmin());
        assert_eq!(p.quantize_value(0.0), 0);
    }
}
