//! Compile-once execution plans for the integer inference path.
//!
//! [`QuantPlan`] is the allocate-once/run-many counterpart of
//! [`QuantizedMultiExitNetwork`](crate::QuantizedMultiExitNetwork): the
//! recursive lowering walk is flattened into a linear step list, buffer
//! lifetimes are planned at compile time (liveness over the flat list with
//! free-list reuse, elementwise steps running in place when their input
//! dies), weights are packed **once** into the transposed/widened `i16`
//! layout the integer matmul kernels consume, and every intermediate — code
//! slots, the im2col scratch, accumulators, dropout masks, softmax staging —
//! lives in a preallocated tensor arena. After a warm-up call that sizes the
//! arena for the batch, [`QuantPlan::predict_probs_into`] performs **zero
//! heap allocations** in the steady state (on a sequential executor; the
//! thread-pool fan-out of large kernels allocates its scoped workers by
//! design).
//!
//! The plan executes exactly the arithmetic of the unplanned path — same
//! kernels modulo exact-integer reassociation, same requantization, same
//! seeded mask streams in the same walk order — so planned and unplanned
//! predictions are **bit-exact** against each other for every format; the
//! parity suite in `tests/planned_parity.rs` pins this.
//!
//! ```text
//! CalibratedNetwork ──ranges──► compile(format)
//!   │                              │  flatten ops · derive QuantParams
//!   │                              │  pack weights (i16, transposed)
//!   │                              ▼  plan slot liveness
//! (one float pass,            QuantPlan { steps, arena }
//!  shared by all formats)         │
//!                                 ▼  run many: predict_probs_into
//!                            zero steady-state allocation
//! ```

use crate::calib::{CalibratedNetwork, RecordCursor};
use crate::error::QuantError;
use crate::fixed::FixedPointFormat;
use crate::net::{div_round, dropout_scale_q, quantize_affine, quantize_weights, MUL_FRAC};
use crate::params::{IntWidth, QuantParams};
use crate::qtensor::QuantData;
use crate::schedule::{PlanSchedule, ScheduleExit, ScheduleOp, ScheduleStep};
use bnn_models::{AdaptivePrediction, AdaptiveStats, ExitPolicy};
use bnn_nn::layer::Mode;
use bnn_nn::lowering::LayerLowering;
use bnn_tensor::exec::Executor;
use bnn_tensor::int::{
    im2row_i16_into, matmul_abt_i64_into, matmul_wide_i32_into, requantize,
    requantize_i32_row_biased_into, requantize_i32_row_into, requantize_i64_row_biased_into,
    requantize_i64_row_into,
};
use bnn_tensor::linalg::ConvGeometry;
use bnn_tensor::ops::softmax_rows_into;
use bnn_tensor::rng::{stream_seed, Rng, SplitMix64, Xoshiro256StarStar};
use bnn_tensor::Tensor;

/// Minimum multiply-accumulate count before a plan kernel fans out over the
/// parallel executor (the same threshold as the unplanned integer kernels).
const PAR_MACS_THRESHOLD: usize = 1 << 20;

/// A packed convolution: weights widened/flattened to `[out_c, in_c*k*k]`
/// `i16` once at compile time (the unplanned path re-packs per call).
#[derive(Debug, Clone)]
struct PlanConv {
    w16: Vec<i16>,
    bias: Vec<i64>,
    out_c: usize,
    in_c: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    shift: i32,
    /// Fractional bits of the weight codes (carried for schedule export;
    /// execution only needs `shift`).
    w_frac: u32,
    out: QuantParams,
}

/// A packed dense layer: weights transposed to `[out_f, in_f]` `i16`.
#[derive(Debug, Clone)]
struct PlanDense {
    wt16: Vec<i16>,
    bias: Vec<i64>,
    in_f: usize,
    out_f: usize,
    shift: i32,
    /// Fractional bits of the weight codes (carried for schedule export).
    w_frac: u32,
    out: QuantParams,
}

/// Quantized per-channel affine multipliers.
#[derive(Debug, Clone)]
struct PlanAffine {
    m: Vec<i64>,
    b: Vec<i64>,
    out: QuantParams,
}

/// One step of the flattened plan.
#[derive(Debug, Clone)]
enum StepKind {
    Conv(Box<PlanConv>),
    Dense(Box<PlanDense>),
    Relu,
    MaxPool {
        kernel: usize,
        stride: usize,
    },
    AvgPool {
        kernel: usize,
        stride: usize,
    },
    GlobalAvgPool,
    Affine(Box<PlanAffine>),
    McDropout {
        rate: f64,
        scale_q: i64,
        params: QuantParams,
        rng: Xoshiro256StarStar,
    },
    /// Residual merge: requantize both paths to the output format, add,
    /// clamp into `[0, qmax]` (the merged ReLU).
    Merge {
        m_shift: i32,
        s_shift: i32,
        out: QuantParams,
    },
}

/// A flattened op with its slot assignment and static per-sample shapes.
#[derive(Debug, Clone)]
struct Step {
    kind: StepKind,
    /// Source slot (the main path for [`StepKind::Merge`]).
    src: usize,
    /// Second source slot (the shortcut path of a merge).
    src2: Option<usize>,
    dst: usize,
    /// Per-sample dims of the source activation (batch axis stripped).
    in_dims: Vec<usize>,
    /// Per-sample dims of the output activation.
    out_dims: Vec<usize>,
    /// Static per-sample integer-op estimate (MACs for conv/dense, touched
    /// elements otherwise); multiply by the batch to price an invocation.
    ops: u64,
}

impl Step {
    fn in_elems(&self) -> usize {
        self.in_dims.iter().product()
    }

    fn out_elems(&self) -> usize {
        self.out_dims.iter().product()
    }
}

/// One compiled exit branch.
#[derive(Debug, Clone)]
struct PlanExit {
    steps: Vec<Step>,
    out_slot: usize,
    out_params: QuantParams,
    out_dims: Vec<usize>,
    /// Backbone block this exit reads from (attachment point) — the
    /// segmentation boundary for adaptive execution.
    after_block: usize,
}

/// How MC-dropout masks index into the batch.
///
/// [`MaskGranularity::PerBatch`] is the unplanned network's semantics: one
/// stream draw per (batch, channel), so a batch of N consumes N times the
/// draws and batched output differs from N single-sample calls.
/// [`MaskGranularity::PerSample`] draws one per-sample mask per pass and
/// broadcasts it across the batch: every kernel in the plan computes each
/// output element from one sample alone, so per-sample masks make a batched
/// call bit-exact with the concatenation of single-sample calls — the
/// batch-boundary invariance dynamic batching needs. For `batch == 1` the
/// two modes draw and apply identical masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MaskGranularity {
    PerBatch,
    PerSample,
}

/// The preallocated tensor arena: activation slots plus the shared scratch
/// buffers. All sizes grow monotonically with the largest batch seen, so the
/// steady state of repeated same-batch calls never reallocates.
#[derive(Debug, Clone, Default)]
struct Arena {
    slots: Vec<Vec<i16>>,
    cols: Vec<i16>,
    acc32: Vec<i32>,
    acc64: Vec<i64>,
    mask: Vec<bool>,
    logits: Vec<f32>,
    probs: Vec<f32>,
    /// Adaptive execution: running per-sample softmax ensembles
    /// (`[batch, classes]`, live rows packed at the front).
    acc: Vec<f32>,
    /// Adaptive execution: original sample index of each live row.
    live_idx: Vec<usize>,
}

/// A compiled, arena-allocated execution plan for the integer inference of
/// a calibrated multi-exit network at one fixed-point format.
///
/// Build one with [`CalibratedNetwork::plan`]; see the
/// [module documentation](self) for the dataflow.
///
/// # Example
///
/// ```
/// use bnn_models::{zoo, ModelConfig};
/// use bnn_quant::{CalibratedNetwork, FixedPointFormat};
/// use bnn_tensor::rng::Xoshiro256StarStar;
/// use bnn_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = zoo::lenet5(&ModelConfig::mnist().with_resolution(12, 12).with_width_divisor(4))
///     .with_exits_after_every_block()?
///     .with_exit_mcd(0.25)?;
/// let trained = spec.build(7)?; // (train it for real use)
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let calib = Tensor::randn(&[4, 1, 12, 12], &mut rng);
///
/// let calibrated = CalibratedNetwork::calibrate(&trained, &calib)?;
/// let mut plan = calibrated.plan(FixedPointFormat::new(8, 3)?)?;
/// let inputs = Tensor::randn(&[4, 1, 12, 12], &mut rng);
/// let probs = plan.predict_probs(&inputs, 6, 2023)?; // warm-up sizes the arena
/// let again = plan.predict_probs(&inputs, 6, 2023)?; // steady state: no allocation
/// assert_eq!(probs.as_slice(), again.as_slice());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuantPlan {
    format: FixedPointFormat,
    width: IntWidth,
    classes: usize,
    in_params: QuantParams,
    in_dims: Vec<usize>,
    input_slot: usize,
    backbone: Vec<Step>,
    exits: Vec<PlanExit>,
    /// Backbone step count after each block — segmentation boundaries for
    /// adaptive execution (`backbone[..block_bounds[b]]` runs blocks
    /// `0..=b`).
    block_bounds: Vec<usize>,
    /// Arena slot holding each block's boundary value (pinned: never reused
    /// by later steps, so compacting it between exits is safe).
    block_slots: Vec<usize>,
    /// Per-sample element count of each block's boundary value — the gather
    /// unit for batch compaction.
    block_units: Vec<usize>,
    /// Per-slot per-sample element capacity (max over the values sharing it).
    slot_elems: Vec<usize>,
    /// Per-sample scratch capacities.
    cols_unit: usize,
    acc_unit: usize,
    mask_unit: usize,
    logit_unit: usize,
    arena: Arena,
    exec: Option<Executor>,
}

/// Compile-time value bookkeeping: every step output is a fresh value;
/// flatten/identity alias their input (same storage, new shape).
struct ValueInfo {
    dims: Vec<usize>,
    alias_of: Option<usize>,
    pinned: bool,
}

/// The plan builder: emits steps with *value* ids, then linear-scans them
/// into slot ids.
struct PlanBuilder {
    total_bits: u32,
    steps: Vec<Step>,
    values: Vec<ValueInfo>,
    cols_unit: usize,
    acc_unit: usize,
    mask_unit: usize,
}

impl PlanBuilder {
    fn new_value(&mut self, dims: Vec<usize>) -> usize {
        self.values.push(ValueInfo {
            dims,
            alias_of: None,
            pinned: false,
        });
        self.values.len() - 1
    }

    fn alias_value(&mut self, of: usize, dims: Vec<usize>) -> usize {
        let root = self.root(of);
        self.values.push(ValueInfo {
            dims,
            alias_of: Some(root),
            pinned: false,
        });
        self.values.len() - 1
    }

    fn root(&self, v: usize) -> usize {
        match self.values[v].alias_of {
            Some(r) => r,
            None => v,
        }
    }

    fn dims(&self, v: usize) -> Vec<usize> {
        self.values[v].dims.clone()
    }

    fn push(
        &mut self,
        kind: StepKind,
        src: usize,
        src2: Option<usize>,
        out_dims: Vec<usize>,
    ) -> usize {
        let dst = self.new_value(out_dims.clone());
        let in_dims = self.dims(src);
        let ops = step_unit_ops(&kind, &in_dims, &out_dims);
        self.steps.push(Step {
            kind,
            src,
            src2,
            dst,
            in_dims,
            out_dims,
            ops,
        });
        dst
    }

    /// Packs a weight code tensor into the widened `i16` layout; `transpose`
    /// selects the `[out, in]` dense layout (`dims = (rows_in, cols_out)`).
    fn widen_codes(codes: &QuantData, transpose: Option<(usize, usize)>) -> Vec<i16> {
        match transpose {
            None => match codes {
                QuantData::I8(v) => v.iter().map(|&c| c as i16).collect(),
                QuantData::I16(v) => v.clone(),
            },
            Some((rows, cols)) => {
                let mut out = vec![0i16; rows * cols];
                for r in 0..rows {
                    for c in 0..cols {
                        out[c * rows + r] = match codes {
                            QuantData::I8(v) => v[r * cols + c] as i16,
                            QuantData::I16(v) => v[r * cols + c],
                        };
                    }
                }
                out
            }
        }
    }

    /// Emits the step(s) of one lowered op, consuming calibration records in
    /// the same walk order as the unplanned builder.
    fn emit(
        &mut self,
        lowering: &LayerLowering,
        cursor: &mut RecordCursor<'_>,
        params: &mut QuantParams,
        cur: &mut usize,
    ) -> Result<(), QuantError> {
        let total_bits = self.total_bits;
        match lowering {
            LayerLowering::Sequence(children) => {
                for child in children {
                    self.emit(child, cursor, params, cur)?;
                }
            }
            LayerLowering::Conv2d {
                weight,
                bias,
                stride,
                padding,
            } => {
                let record = cursor.take(lowering.name())?;
                let dims = weight.dims();
                let (out_c, in_c, kernel) = (dims[0], dims[1], dims[2]);
                let out = record
                    .out
                    .expect("conv records an output range")
                    .params(total_bits)?;
                let w = quantize_weights(
                    weight,
                    Some(&[out_c, in_c * kernel * kernel]),
                    bias,
                    record.weight.expect("conv records a weight range"),
                    total_bits,
                    *params,
                    out,
                )?;
                let in_dims = self.dims(*cur);
                let (h, ww) = (in_dims[1], in_dims[2]);
                let geom = ConvGeometry::square(h, ww, kernel, *stride, *padding);
                let plane = geom.out_h() * geom.out_w();
                let kred = in_c * kernel * kernel;
                self.cols_unit = self.cols_unit.max(kred * plane);
                self.acc_unit = self.acc_unit.max(out_c * plane);
                *cur = self.push(
                    StepKind::Conv(Box::new(PlanConv {
                        w16: Self::widen_codes(&w.codes, None),
                        bias: w.bias,
                        out_c,
                        in_c,
                        kernel,
                        stride: *stride,
                        padding: *padding,
                        shift: w.shift,
                        w_frac: w.w_frac,
                        out,
                    })),
                    *cur,
                    None,
                    record.out_dims.clone(),
                );
                *params = out;
            }
            LayerLowering::Dense { weight, bias } => {
                let record = cursor.take(lowering.name())?;
                let dims = weight.dims();
                let (in_f, out_f) = (dims[0], dims[1]);
                let out = record
                    .out
                    .expect("dense records an output range")
                    .params(total_bits)?;
                let w = quantize_weights(
                    weight,
                    None,
                    bias,
                    record.weight.expect("dense records a weight range"),
                    total_bits,
                    *params,
                    out,
                )?;
                self.acc_unit = self.acc_unit.max(out_f);
                *cur = self.push(
                    StepKind::Dense(Box::new(PlanDense {
                        wt16: Self::widen_codes(&w.codes, Some((in_f, out_f))),
                        bias: w.bias,
                        in_f,
                        out_f,
                        shift: w.shift,
                        w_frac: w.w_frac,
                        out,
                    })),
                    *cur,
                    None,
                    record.out_dims.clone(),
                );
                *params = out;
            }
            LayerLowering::Relu => {
                let record = cursor.take(lowering.name())?;
                *cur = self.push(StepKind::Relu, *cur, None, record.out_dims.clone());
            }
            LayerLowering::MaxPool2d { kernel, stride } => {
                let record = cursor.take(lowering.name())?;
                *cur = self.push(
                    StepKind::MaxPool {
                        kernel: *kernel,
                        stride: *stride,
                    },
                    *cur,
                    None,
                    record.out_dims.clone(),
                );
            }
            LayerLowering::AvgPool2d { kernel, stride } => {
                let record = cursor.take(lowering.name())?;
                *cur = self.push(
                    StepKind::AvgPool {
                        kernel: *kernel,
                        stride: *stride,
                    },
                    *cur,
                    None,
                    record.out_dims.clone(),
                );
            }
            LayerLowering::GlobalAvgPool2d => {
                let record = cursor.take(lowering.name())?;
                *cur = self.push(StepKind::GlobalAvgPool, *cur, None, record.out_dims.clone());
            }
            LayerLowering::Flatten => {
                // Shape-only: the flat plan reinterprets the buffer in place.
                let record = cursor.take(lowering.name())?;
                *cur = self.alias_value(*cur, record.out_dims.clone());
            }
            LayerLowering::Identity => {
                let record = cursor.take(lowering.name())?;
                *cur = self.alias_value(*cur, record.out_dims.clone());
            }
            LayerLowering::Affine { scale, shift } => {
                let record = cursor.take(lowering.name())?;
                let out = record
                    .out
                    .expect("affine records an output range")
                    .params(total_bits)?;
                let aff = quantize_affine(scale, shift, *params, out);
                *cur = self.push(
                    StepKind::Affine(Box::new(PlanAffine {
                        m: aff.m,
                        b: aff.b,
                        out,
                    })),
                    *cur,
                    None,
                    record.out_dims.clone(),
                );
                *params = out;
            }
            LayerLowering::McDropout { rate } => {
                let record = cursor.take(lowering.name())?;
                let in_dims = self.dims(*cur);
                let unit = if in_dims.len() == 3 {
                    // NCHW at run time: one draw per (batch, channel).
                    in_dims[0]
                } else {
                    in_dims.iter().product()
                };
                self.mask_unit = self.mask_unit.max(unit);
                *cur = self.push(
                    StepKind::McDropout {
                        rate: *rate,
                        scale_q: dropout_scale_q(*rate),
                        params: *params,
                        rng: Xoshiro256StarStar::seed_from_u64(0),
                    },
                    *cur,
                    None,
                    record.out_dims.clone(),
                );
            }
            LayerLowering::Residual { main, shortcut } => {
                let v_in = *cur;
                let in_params = *params;
                let mut main_params = in_params;
                let mut v_main = v_in;
                for child in main {
                    self.emit(child, cursor, &mut main_params, &mut v_main)?;
                }
                let mut short_params = in_params;
                let mut v_short = v_in;
                for child in shortcut {
                    self.emit(child, cursor, &mut short_params, &mut v_short)?;
                }
                let record = cursor.take(lowering.name())?;
                let out = record
                    .out
                    .expect("residual records an output range")
                    .params(total_bits)?;
                *cur = self.push(
                    StepKind::Merge {
                        m_shift: main_params.fractional_bits() as i32
                            - out.fractional_bits() as i32,
                        s_shift: short_params.fractional_bits() as i32
                            - out.fractional_bits() as i32,
                        out,
                    },
                    v_main,
                    Some(v_short),
                    record.out_dims.clone(),
                );
                *params = out;
            }
        }
        Ok(())
    }
}

/// Static per-sample integer-op estimate of one step: multiply-accumulates
/// for conv/dense, touched elements for pools/element-wise steps, two
/// requantize-adds per element for a residual merge.
fn step_unit_ops(kind: &StepKind, in_dims: &[usize], out_dims: &[usize]) -> u64 {
    let in_elems: usize = in_dims.iter().product();
    let out_elems: usize = out_dims.iter().product();
    match kind {
        StepKind::Conv(c) => (c.in_c * c.kernel * c.kernel * out_elems) as u64,
        StepKind::Dense(d) => (d.in_f * d.out_f) as u64,
        StepKind::MaxPool { kernel, .. } | StepKind::AvgPool { kernel, .. } => {
            (kernel * kernel * out_elems) as u64
        }
        StepKind::GlobalAvgPool => in_elems as u64,
        StepKind::Relu | StepKind::Affine(_) | StepKind::McDropout { .. } => out_elems as u64,
        StepKind::Merge { .. } => 2 * out_elems as u64,
    }
}

/// Elementwise steps may run in place when their input dies at the step.
fn aliasable(kind: &StepKind) -> bool {
    matches!(
        kind,
        StepKind::Relu | StepKind::Affine(_) | StepKind::McDropout { .. }
    )
}

impl QuantPlan {
    /// Compiles the plan for one format from a calibrated network. See
    /// [`CalibratedNetwork::plan`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Unsupported`] for formats wider than 16 bits,
    /// or [`QuantError::Internal`] on lowering/record skew.
    pub(crate) fn compile(
        calibrated: &CalibratedNetwork,
        format: FixedPointFormat,
    ) -> Result<Self, QuantError> {
        let total_bits = QuantParams::new(format)?.format().total_bits();
        let in_params = calibrated.input.params(total_bits)?;
        let mut builder = PlanBuilder {
            total_bits,
            steps: Vec::new(),
            values: Vec::new(),
            cols_unit: 0,
            acc_unit: 0,
            mask_unit: 0,
        };
        let input_value = builder.new_value(calibrated.in_dims.clone());

        // Backbone: blocks in execution order; the value live at each block
        // boundary is pinned (exit branches re-read it on every MC pass).
        let mut params = in_params;
        let mut cur = input_value;
        let mut block_values = Vec::with_capacity(calibrated.blocks.len());
        let mut block_params = Vec::with_capacity(calibrated.blocks.len());
        let mut block_bounds = Vec::with_capacity(calibrated.blocks.len());
        for (lowering, record) in &calibrated.blocks {
            let mut cursor = RecordCursor::new(&record.ops);
            builder.emit(lowering, &mut cursor, &mut params, &mut cur)?;
            cursor.finish()?;
            let root = builder.root(cur);
            builder.values[root].pinned = true;
            block_values.push(cur);
            block_params.push(params);
            block_bounds.push(builder.steps.len());
        }
        let backbone_len = builder.steps.len();

        // Exit branches, attachment order.
        let mut exit_meta = Vec::with_capacity(calibrated.exits.len());
        for (after_block, lowering, record) in &calibrated.exits {
            let mut cursor = RecordCursor::new(&record.ops);
            let mut exit_params = block_params[*after_block];
            let mut exit_cur = block_values[*after_block];
            let start = builder.steps.len();
            builder.emit(lowering, &mut cursor, &mut exit_params, &mut exit_cur)?;
            cursor.finish()?;
            exit_meta.push((start, exit_cur, exit_params, *after_block));
        }

        // Liveness over the flat step list, then linear-scan slot assignment
        // with free-list (ping-pong) reuse.
        let n_values = builder.values.len();
        let mut last_use = vec![usize::MAX; n_values];
        for (j, step) in builder.steps.iter().enumerate() {
            last_use[builder.root(step.src)] = j;
            if let Some(s2) = step.src2 {
                last_use[builder.root(s2)] = j;
            }
        }
        let mut slot_of = vec![usize::MAX; n_values];
        let mut slot_elems: Vec<usize> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let assign = |slot_of: &mut Vec<usize>,
                      slot_elems: &mut Vec<usize>,
                      free: &mut Vec<usize>,
                      value: usize,
                      elems: usize|
         -> usize {
            let slot = free.pop().unwrap_or_else(|| {
                slot_elems.push(0);
                slot_elems.len() - 1
            });
            slot_of[value] = slot;
            slot_elems[slot] = slot_elems[slot].max(elems);
            slot
        };
        let input_elems: usize = calibrated.in_dims.iter().product();
        assign(
            &mut slot_of,
            &mut slot_elems,
            &mut free,
            input_value,
            input_elems,
        );
        for j in 0..builder.steps.len() {
            let (src_root, src2_root, dst_root, kind_aliasable, out_elems) = {
                let step = &builder.steps[j];
                (
                    builder.root(step.src),
                    step.src2.map(|s| builder.root(s)),
                    builder.root(step.dst),
                    aliasable(&step.kind),
                    step.out_elems(),
                )
            };
            let src_dies = last_use[src_root] == j && !builder.values[src_root].pinned;
            if kind_aliasable && src_dies {
                let slot = slot_of[src_root];
                slot_of[dst_root] = slot;
                slot_elems[slot] = slot_elems[slot].max(out_elems);
            } else {
                assign(
                    &mut slot_of,
                    &mut slot_elems,
                    &mut free,
                    dst_root,
                    out_elems,
                );
                let dst_slot = slot_of[dst_root];
                let mut dead = [None, None];
                if src_dies && slot_of[src_root] != dst_slot {
                    dead[0] = Some(slot_of[src_root]);
                }
                if let Some(s2) = src2_root {
                    if last_use[s2] == j
                        && !builder.values[s2].pinned
                        && slot_of[s2] != dst_slot
                        && Some(slot_of[s2]) != dead[0]
                    {
                        dead[1] = Some(slot_of[s2]);
                    }
                }
                for slot in dead.into_iter().flatten() {
                    free.push(slot);
                }
            }
        }

        // Rewrite value ids into slot ids.
        let mut steps = builder.steps;
        for step in &mut steps {
            step.src = slot_of[builder.values[step.src].alias_of.unwrap_or(step.src)];
            if let Some(s2) = step.src2 {
                step.src2 = Some(slot_of[builder.values[s2].alias_of.unwrap_or(s2)]);
            }
            step.dst = slot_of[builder.values[step.dst].alias_of.unwrap_or(step.dst)];
        }
        let total = steps.len();
        let mut exits = Vec::with_capacity(exit_meta.len());
        let mut logit_unit = 0usize;
        for (i, (start, out_value, out_params, after_block)) in exit_meta.iter().enumerate() {
            let end = exit_meta
                .get(i + 1)
                .map(|(next_start, _, _, _)| *next_start)
                .unwrap_or(total);
            let exit_steps = steps[*start..end].to_vec();
            let out_root = builder.values[*out_value].alias_of.unwrap_or(*out_value);
            let out_dims = builder.values[*out_value].dims.clone();
            logit_unit = logit_unit.max(out_dims.iter().product());
            exits.push(PlanExit {
                steps: exit_steps,
                out_slot: slot_of[out_root],
                out_params: *out_params,
                out_dims,
                after_block: *after_block,
            });
        }
        steps.truncate(backbone_len);
        let backbone = steps;

        // Block-boundary metadata for adaptive execution: the pinned slot
        // holding each block's output and its per-sample element count (the
        // compaction gather unit — rows are packed at the value's own dims).
        let block_slots: Vec<usize> = block_values
            .iter()
            .map(|&v| slot_of[builder.values[v].alias_of.unwrap_or(v)])
            .collect();
        let block_units: Vec<usize> = block_values
            .iter()
            .map(|&v| builder.values[v].dims.iter().product())
            .collect();

        let mut arena = Arena::default();
        arena.slots.resize(slot_elems.len(), Vec::new());
        Ok(QuantPlan {
            format,
            width: in_params.width(),
            classes: calibrated.classes,
            in_params,
            in_dims: calibrated.in_dims.clone(),
            input_slot: slot_of[input_value],
            backbone,
            exits,
            block_bounds,
            block_slots,
            block_units,
            slot_elems,
            cols_unit: builder.cols_unit,
            acc_unit: builder.acc_unit,
            mask_unit: builder.mask_unit,
            logit_unit,
            arena,
            exec: None,
        })
    }

    /// The format this plan was compiled for.
    pub fn format(&self) -> FixedPointFormat {
        self.format
    }

    /// Number of exits.
    pub fn num_exits(&self) -> usize {
        self.exits.len()
    }

    /// Number of predicted classes.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Per-sample input dims the plan was compiled for (batch axis
    /// stripped): inputs must be shaped `[batch, ..in_dims]`.
    pub fn in_dims(&self) -> &[usize] {
        &self.in_dims
    }

    /// Pre-sizes the arena for `max_batch` samples, so a serving worker can
    /// pay every allocation up front and subsequent calls with any batch up
    /// to `max_batch` stay allocation-free. Monotone: never shrinks.
    pub fn ensure_batch(&mut self, max_batch: usize) {
        self.ensure_arena(max_batch.max(1));
    }

    /// Number of flattened steps (backbone plus all exits).
    pub fn num_steps(&self) -> usize {
        self.backbone.len() + self.exits.iter().map(|e| e.steps.len()).sum::<usize>()
    }

    /// Number of arena activation slots the liveness plan settled on.
    pub fn num_slots(&self) -> usize {
        self.slot_elems.len()
    }

    /// The calibrated output format of every exit branch, in attachment
    /// order.
    pub fn exit_out_params(&self) -> Vec<QuantParams> {
        self.exits.iter().map(|e| e.out_params).collect()
    }

    /// Exports the plan's flattened step list as a backend-readable
    /// [`PlanSchedule`]: the same steps, constants, shifts and slot
    /// assignments this plan executes, with the runtime state (RNG streams,
    /// arena, executor) stripped. See [`crate::schedule`].
    pub fn schedule(&self) -> PlanSchedule {
        fn export_step(step: &Step) -> ScheduleStep {
            let op = match &step.kind {
                StepKind::Conv(c) => ScheduleOp::Conv {
                    weights: c.w16.clone(),
                    bias: c.bias.clone(),
                    out_c: c.out_c,
                    in_c: c.in_c,
                    kernel: c.kernel,
                    stride: c.stride,
                    padding: c.padding,
                    shift: c.shift,
                    w_frac: c.w_frac,
                    out: c.out,
                },
                StepKind::Dense(d) => ScheduleOp::Dense {
                    weights_t: d.wt16.clone(),
                    bias: d.bias.clone(),
                    in_f: d.in_f,
                    out_f: d.out_f,
                    shift: d.shift,
                    w_frac: d.w_frac,
                    out: d.out,
                },
                StepKind::Relu => ScheduleOp::Relu,
                StepKind::MaxPool { kernel, stride } => ScheduleOp::MaxPool {
                    kernel: *kernel,
                    stride: *stride,
                },
                StepKind::AvgPool { kernel, stride } => ScheduleOp::AvgPool {
                    kernel: *kernel,
                    stride: *stride,
                },
                StepKind::GlobalAvgPool => ScheduleOp::GlobalAvgPool,
                StepKind::Affine(a) => ScheduleOp::Affine {
                    m: a.m.clone(),
                    b: a.b.clone(),
                    out: a.out,
                },
                StepKind::McDropout {
                    rate,
                    scale_q,
                    params,
                    rng: _,
                } => ScheduleOp::McDropout {
                    rate: *rate,
                    scale_q: *scale_q,
                    params: *params,
                },
                StepKind::Merge {
                    m_shift,
                    s_shift,
                    out,
                } => ScheduleOp::Merge {
                    m_shift: *m_shift,
                    s_shift: *s_shift,
                    out: *out,
                },
            };
            ScheduleStep {
                op,
                src: step.src,
                src2: step.src2,
                dst: step.dst,
                in_dims: step.in_dims.clone(),
                out_dims: step.out_dims.clone(),
                unit_ops: step.ops,
            }
        }

        PlanSchedule {
            format: self.format,
            classes: self.classes,
            in_params: self.in_params,
            in_dims: self.in_dims.clone(),
            input_slot: self.input_slot,
            backbone: self.backbone.iter().map(export_step).collect(),
            exits: self
                .exits
                .iter()
                .map(|e| ScheduleExit {
                    steps: e.steps.iter().map(export_step).collect(),
                    out_slot: e.out_slot,
                    out_params: e.out_params,
                    out_dims: e.out_dims.clone(),
                    after_block: e.after_block,
                })
                .collect(),
            slot_elems: self.slot_elems.clone(),
        }
    }

    /// Pins every kernel in this plan to `exec` instead of the work-size
    /// based auto selection. `Executor::sequential()` makes the steady state
    /// strictly allocation-free (the thread-pool fan-out of large kernels
    /// allocates its scoped workers); results are bitwise identical either
    /// way.
    pub fn set_executor(&mut self, exec: Executor) {
        self.exec = Some(exec);
    }

    /// Reseeds every MC-dropout stream from `master_seed`, walking the flat
    /// step list (backbone, then exits in attachment order) — the same
    /// stream assignment as the unplanned network's `reseed_mc_streams`.
    pub fn reseed_mc_streams(&mut self, master_seed: u64) {
        let mut streams = SplitMix64::new(master_seed);
        for step in self
            .backbone
            .iter_mut()
            .chain(self.exits.iter_mut().flat_map(|e| e.steps.iter_mut()))
        {
            if let StepKind::McDropout { rng, .. } = &mut step.kind {
                *rng = Xoshiro256StarStar::seed_from_u64(streams.next_u64());
            }
        }
    }

    /// Grows the arena for `batch` samples (monotone: repeated calls with
    /// the same or smaller batch perform no allocation).
    fn ensure_arena(&mut self, batch: usize) {
        for (slot, &unit) in self.arena.slots.iter_mut().zip(&self.slot_elems) {
            let need = unit * batch;
            if slot.len() < need {
                slot.resize(need, 0);
            }
        }
        let grow = |v: &mut Vec<i16>, need: usize| {
            if v.len() < need {
                v.resize(need, 0);
            }
        };
        grow(&mut self.arena.cols, self.cols_unit * batch);
        if self.arena.acc32.len() < self.acc_unit * batch && self.width == IntWidth::W8 {
            self.arena.acc32.resize(self.acc_unit * batch, 0);
        }
        if self.arena.acc64.len() < self.acc_unit * batch && self.width == IntWidth::W16 {
            self.arena.acc64.resize(self.acc_unit * batch, 0);
        }
        if self.arena.mask.len() < self.mask_unit * batch {
            self.arena.mask.resize(self.mask_unit * batch, false);
        }
        if self.arena.logits.len() < self.logit_unit * batch {
            self.arena.logits.resize(self.logit_unit * batch, 0.0);
        }
        if self.arena.probs.len() < self.logit_unit * batch {
            self.arena.probs.resize(self.logit_unit * batch, 0.0);
        }
        if self.arena.acc.len() < self.classes * batch {
            self.arena.acc.resize(self.classes * batch, 0.0);
        }
        if self.arena.live_idx.len() < batch {
            self.arena.live_idx.resize(batch, 0);
        }
    }

    /// Quantizes the float input batch into the input slot.
    fn load_input(&mut self, inputs: &Tensor) -> Result<usize, QuantError> {
        if inputs.dims().len() != self.in_dims.len() + 1 || inputs.dims()[1..] != self.in_dims[..] {
            return Err(QuantError::InvalidInput(format!(
                "plan expects input dims [batch, {:?}], got {:?}",
                self.in_dims,
                inputs.dims()
            )));
        }
        if inputs.dims()[0] == 0 {
            return Err(QuantError::InvalidInput("empty input batch".into()));
        }
        let batch = inputs.dims()[0];
        self.ensure_arena(batch);
        let params = self.in_params;
        let slot = &mut self.arena.slots[self.input_slot];
        for (dst, &v) in slot.iter_mut().zip(inputs.as_slice()) {
            *dst = params.quantize_value(v) as i16;
        }
        Ok(batch)
    }

    /// Runs a step slice at `batch` live rows, returning
    /// `(invocations, ops)` where ops is the static per-sample estimate
    /// summed over the slice and scaled by the batch.
    fn run_steps(
        steps: &mut [Step],
        arena: &mut Arena,
        width: IntWidth,
        exec: Option<Executor>,
        batch: usize,
        mode: Mode,
        masks: MaskGranularity,
    ) -> Result<(u64, u64), QuantError> {
        let invocations = steps.len() as u64;
        let mut ops = 0u64;
        for step in steps.iter_mut() {
            run_step(step, arena, width, exec, batch, mode, masks)?;
            ops += step.ops * batch as u64;
        }
        Ok((invocations, ops))
    }

    /// Runs the backbone deterministically and the exit branches in `mode`,
    /// returning one dequantized logit tensor per exit — the planned
    /// counterpart of the unplanned `forward_exits_int` (bit-exact against
    /// it).
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn forward_exits_int(
        &mut self,
        inputs: &Tensor,
        mode: Mode,
    ) -> Result<Vec<Tensor>, QuantError> {
        let batch = self.load_input(inputs)?;
        let exec = self.exec;
        let width = self.width;
        Self::run_steps(
            &mut self.backbone,
            &mut self.arena,
            width,
            exec,
            batch,
            Mode::Eval,
            MaskGranularity::PerBatch,
        )?;
        let mut outputs = Vec::with_capacity(self.exits.len());
        for exit in &mut self.exits {
            Self::run_steps(
                &mut exit.steps,
                &mut self.arena,
                width,
                exec,
                batch,
                mode,
                MaskGranularity::PerBatch,
            )?;
            let elems: usize = exit.out_dims.iter().product::<usize>() * batch;
            let scale = exit.out_params.scale();
            let data: Vec<f32> = self.arena.slots[exit.out_slot][..elems]
                .iter()
                .map(|&c| c as f32 * scale)
                .collect();
            let mut dims = Vec::with_capacity(exit.out_dims.len() + 1);
            dims.push(batch);
            dims.extend_from_slice(&exit.out_dims);
            outputs.push(Tensor::from_vec(data, &dims)?);
        }
        Ok(outputs)
    }

    /// Seeded Monte-Carlo prediction into a caller-provided buffer: the
    /// backbone runs once, each pass reseeds the mask streams from
    /// `stream_seed(seed, pass)` and re-runs the exits in
    /// [`Mode::McSample`], and the first `n_samples` per-sample softmax
    /// tensors are averaged into `out` (`[batch, classes]`, resized).
    /// Bit-exact with the unplanned `predict_probs`; zero steady-state heap
    /// allocation once the arena is warm (sequential executor).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Internal`] for a plan without exits or an input
    /// shape mismatch, or propagates execution errors.
    pub fn predict_probs_into(
        &mut self,
        inputs: &Tensor,
        n_samples: usize,
        seed: u64,
        out: &mut Vec<f32>,
    ) -> Result<(usize, usize), QuantError> {
        self.predict_probs_impl(inputs, n_samples, seed, out, MaskGranularity::PerBatch)
    }

    /// The batch-boundary-invariant counterpart of
    /// [`QuantPlan::predict_probs_into`]: each MC pass draws its dropout
    /// masks at **per-sample** granularity and broadcasts them across the
    /// batch, so the result for every sample is bit-exact with a
    /// single-sample call at the same seed — regardless of how requests were
    /// grouped into batches. This is the serving entry point: a dynamic
    /// batcher may split the same requests `[a, b, c]` as `[a] + [b, c]` or
    /// `[a, b, c]` and every response stays identical. For `batch == 1` it
    /// is bit-exact with [`QuantPlan::predict_probs_into`] itself.
    ///
    /// Zero steady-state heap allocation once the arena is warm for the
    /// batch (sequential executor); see [`QuantPlan::ensure_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidInput`] for an empty batch or an input
    /// shape mismatch, or propagates execution errors.
    pub fn predict_probs_batch_into(
        &mut self,
        inputs: &Tensor,
        n_samples: usize,
        seed: u64,
        out: &mut Vec<f32>,
    ) -> Result<(usize, usize), QuantError> {
        self.predict_probs_impl(inputs, n_samples, seed, out, MaskGranularity::PerSample)
    }

    /// [`QuantPlan::predict_probs_batch_into`] returning a fresh tensor.
    ///
    /// # Errors
    ///
    /// See [`QuantPlan::predict_probs_batch_into`].
    pub fn predict_probs_batch(
        &mut self,
        inputs: &Tensor,
        n_samples: usize,
        seed: u64,
    ) -> Result<Tensor, QuantError> {
        let mut out = Vec::new();
        let (batch, classes) = self.predict_probs_batch_into(inputs, n_samples, seed, &mut out)?;
        Ok(Tensor::from_vec(out, &[batch, classes])?)
    }

    fn predict_probs_impl(
        &mut self,
        inputs: &Tensor,
        n_samples: usize,
        seed: u64,
        out: &mut Vec<f32>,
        masks: MaskGranularity,
    ) -> Result<(usize, usize), QuantError> {
        let n_exits = self.exits.len();
        if n_exits == 0 {
            return Err(QuantError::Internal("plan has no exits".into()));
        }
        let batch = self.load_input(inputs)?;
        let exec = self.exec;
        let width = self.width;
        Self::run_steps(
            &mut self.backbone,
            &mut self.arena,
            width,
            exec,
            batch,
            Mode::Eval,
            masks,
        )?;
        let passes = n_samples.div_ceil(n_exits).max(1);
        let kept = if n_samples == 0 {
            passes * n_exits
        } else {
            n_samples.min(passes * n_exits)
        };
        let elems = batch * self.classes;
        if out.len() != elems {
            out.clear();
            out.resize(elems, 0.0);
        } else {
            out.fill(0.0);
        }
        let mut sample = 0usize;
        'passes: for pass in 0..passes {
            self.reseed_mc_streams(stream_seed(seed, pass as u64));
            for e in 0..n_exits {
                if sample >= kept {
                    // Every remaining sample would be truncated anyway (the
                    // unplanned path computes and discards them; skipping is
                    // result-identical because exit streams are independent).
                    break 'passes;
                }
                Self::run_steps(
                    &mut self.exits[e].steps,
                    &mut self.arena,
                    width,
                    exec,
                    batch,
                    Mode::McSample,
                    masks,
                )?;
                let (out_slot, out_params) = (self.exits[e].out_slot, self.exits[e].out_params);
                let n: usize = self.exits[e].out_dims.iter().product::<usize>() * batch;
                let scale = out_params.scale();
                for (l, &c) in self.arena.logits[..n]
                    .iter_mut()
                    .zip(&self.arena.slots[out_slot][..n])
                {
                    *l = c as f32 * scale;
                }
                softmax_rows_into(
                    &self.arena.logits[..n],
                    batch,
                    self.classes,
                    &mut self.arena.probs[..n],
                )?;
                for (o, &p) in out.iter_mut().zip(&self.arena.probs[..n]) {
                    *o += p;
                }
                sample += 1;
            }
        }
        let inv = 1.0 / kept as f32;
        for o in out.iter_mut() {
            *o *= inv;
        }
        Ok((batch, self.classes))
    }

    /// [`QuantPlan::predict_probs_into`] returning a fresh tensor (the
    /// drop-in replacement for the unplanned `predict_probs`).
    ///
    /// # Errors
    ///
    /// See [`QuantPlan::predict_probs_into`].
    pub fn predict_probs(
        &mut self,
        inputs: &Tensor,
        n_samples: usize,
        seed: u64,
    ) -> Result<Tensor, QuantError> {
        let mut out = Vec::new();
        let (batch, classes) = self.predict_probs_into(inputs, n_samples, seed, &mut out)?;
        Ok(Tensor::from_vec(out, &[batch, classes])?)
    }

    /// Static cost of the fixed-depth path
    /// ([`QuantPlan::predict_probs_batch_into`]) for a `batch`-sample call
    /// at `n_samples` MC samples: `(step_invocations, ops)` where ops scale
    /// with the batch but invocations do not. This is the `ops_fixed`
    /// baseline adaptive execution reports its savings against.
    pub fn fixed_cost(&self, batch: usize, n_samples: usize) -> (u64, u64) {
        let n_exits = self.exits.len().max(1);
        let passes = n_samples.div_ceil(n_exits).max(1);
        let kept = if n_samples == 0 {
            passes * n_exits
        } else {
            n_samples.min(passes * n_exits)
        };
        let mut steps = self.backbone.len() as u64;
        let mut unit_ops: u64 = self.backbone.iter().map(|s| s.ops).sum();
        for (e, exit) in self.exits.iter().enumerate() {
            let runs = if e < kept {
                ((kept - e - 1) / n_exits + 1) as u64
            } else {
                0
            };
            steps += runs * exit.steps.len() as u64;
            unit_ops += runs * exit.steps.iter().map(|s| s.ops).sum::<u64>();
        }
        (steps, unit_ops * batch as u64)
    }

    /// Policy-driven adaptive batched prediction on the integer path: the
    /// flattened step list is executed in exit-boundary segments, and after
    /// each exit head's ensemble joins the live rows, `policy` retires the
    /// confident samples and the arena **compacts the surviving rows into a
    /// dense smaller batch** — a gather on the pinned block-boundary slot
    /// (which later steps never clobber) plus the live-index map, so only
    /// the stragglers pay for the deeper blocks.
    ///
    /// Execution order per exit `e`: run the backbone segment up to the
    /// exit's attachment block once in [`Mode::Eval`] on the live rows, then
    /// draw `ceil(n_samples / n_exits)` MC samples from exit `e` — pass `p`
    /// reseeds every mask stream from `stream_seed(seed, p)` (the fixed
    /// path's assignment) with per-sample masks broadcast across the batch.
    /// Each sample's output row is its running equally-weighted ensemble
    /// mean over the exits consulted before it retired. Because masks are
    /// per-sample and retirement decisions are row-local, every row —
    /// probabilities *and* exit choice — is bit-exact with evaluating that
    /// sample alone under the same policy, regardless of which samples
    /// shared its batch or when they retired.
    ///
    /// With `n_samples == 0` the exits are consulted deterministically in
    /// [`Mode::Eval`] (one consult per exit). With [`ExitPolicy::Never`] and
    /// `n_samples > 0` the call delegates to
    /// [`QuantPlan::predict_probs_batch_into`] and is bit-exact with it.
    ///
    /// Zero steady-state heap allocation once the arena is warm for the
    /// batch (sequential executor); see [`QuantPlan::ensure_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidInput`] for an invalid policy threshold,
    /// an empty batch or a shape mismatch, [`QuantError::Internal`] for a
    /// plan without exits or with exits attached out of depth order, or
    /// propagates execution errors.
    pub fn predict_adaptive_batch_into(
        &mut self,
        inputs: &Tensor,
        n_samples: usize,
        seed: u64,
        policy: &ExitPolicy,
        out: &mut Vec<f32>,
        exit_taken: &mut Vec<usize>,
    ) -> Result<AdaptiveStats, QuantError> {
        policy.validate().map_err(QuantError::InvalidInput)?;
        let n_exits = self.exits.len();
        if n_exits == 0 {
            return Err(QuantError::Internal("plan has no exits".into()));
        }
        if self
            .exits
            .windows(2)
            .any(|w| w[0].after_block > w[1].after_block)
        {
            return Err(QuantError::Internal(
                "adaptive execution requires exits in ascending block order".into(),
            ));
        }
        let spe = if n_samples == 0 {
            1
        } else {
            n_samples.div_ceil(n_exits)
        };

        // `Never` with MC samples is exactly the fixed-depth path; delegate
        // so the accumulation order (pass-major) — and therefore every f32
        // bit — matches `predict_probs_batch_into`. The deterministic
        // `n_samples == 0` variant consults each exit once in Eval mode,
        // which the generic loop below expresses directly.
        if policy.is_never() && n_samples > 0 {
            let (batch, classes) = self.predict_probs_batch_into(inputs, n_samples, seed, out)?;
            exit_taken.clear();
            exit_taken.resize(batch, n_exits - 1);
            let (fixed_steps, fixed_ops) = self.fixed_cost(batch, n_samples);
            return Ok(AdaptiveStats {
                batch,
                classes,
                samples_per_exit: spe,
                steps_executed: fixed_steps,
                ops_executed: fixed_ops,
                ops_fixed: fixed_ops,
            });
        }

        let mode = if n_samples == 0 {
            Mode::Eval
        } else {
            Mode::McSample
        };
        let batch = self.load_input(inputs)?;
        let classes = self.classes;
        let (_, fixed_ops) = self.fixed_cost(batch, n_samples);
        let elems = batch * classes;
        if out.len() != elems {
            out.clear();
            out.resize(elems, 0.0);
        }
        exit_taken.clear();
        exit_taken.resize(batch, 0);
        for (i, v) in self.arena.live_idx[..batch].iter_mut().enumerate() {
            *v = i;
        }
        self.arena.acc[..elems].fill(0.0);

        let exec = self.exec;
        let width = self.width;
        let mut live = batch;
        let mut next_bound = 0usize;
        let mut steps_executed = 0u64;
        let mut ops_executed = 0u64;

        for e in 0..n_exits {
            let after_block = self.exits[e].after_block;
            let bound = self.block_bounds[after_block];
            if bound > next_bound {
                let (s, o) = Self::run_steps(
                    &mut self.backbone[next_bound..bound],
                    &mut self.arena,
                    width,
                    exec,
                    live,
                    Mode::Eval,
                    MaskGranularity::PerSample,
                )?;
                steps_executed += s;
                ops_executed += o;
                next_bound = bound;
            }
            for p in 0..spe {
                if matches!(mode, Mode::McSample) {
                    // Reseeding assigns every stream from the master seed, so
                    // running only exit `e` afterwards draws the identical
                    // masks the fixed path draws for this exit on pass `p`.
                    self.reseed_mc_streams(stream_seed(seed, p as u64));
                }
                let (s, o) = Self::run_steps(
                    &mut self.exits[e].steps,
                    &mut self.arena,
                    width,
                    exec,
                    live,
                    mode,
                    MaskGranularity::PerSample,
                )?;
                steps_executed += s;
                ops_executed += o;
                let (out_slot, out_params) = (self.exits[e].out_slot, self.exits[e].out_params);
                let n: usize = self.exits[e].out_dims.iter().product::<usize>() * live;
                let scale = out_params.scale();
                for (l, &c) in self.arena.logits[..n]
                    .iter_mut()
                    .zip(&self.arena.slots[out_slot][..n])
                {
                    *l = c as f32 * scale;
                }
                softmax_rows_into(
                    &self.arena.logits[..n],
                    live,
                    classes,
                    &mut self.arena.probs[..n],
                )?;
                for (a, &p) in self.arena.acc[..n].iter_mut().zip(&self.arena.probs[..n]) {
                    *a += p;
                }
            }
            let consulted = ((e + 1) * spe) as f32;
            let last = e + 1 == n_exits;

            // Retire-or-compact pass: retired rows scatter their ensemble
            // mean to their original output slot; survivors slide forward in
            // the accumulator, the live-index map and the frontier block
            // slot. The frontier slot is pinned — no backbone or exit step
            // reuses it — so the gathered rows are exactly the block outputs
            // the deeper segments read.
            let frontier = self.block_slots[after_block];
            let unit = self.block_units[after_block];
            let arena = &mut self.arena;
            let mut keep = 0usize;
            for r in 0..live {
                let start = r * classes;
                let retire = last || policy.retires(&arena.acc[start..start + classes], consulted);
                if retire {
                    let orig = arena.live_idx[r];
                    for c in 0..classes {
                        out[orig * classes + c] = arena.acc[start + c] / consulted;
                    }
                    exit_taken[orig] = e;
                } else {
                    if keep != r {
                        arena
                            .acc
                            .copy_within(start..start + classes, keep * classes);
                        arena.live_idx[keep] = arena.live_idx[r];
                        if !last {
                            arena.slots[frontier]
                                .copy_within(r * unit..(r + 1) * unit, keep * unit);
                        }
                    }
                    keep += 1;
                }
            }
            if keep == 0 {
                live = 0;
                break;
            }
            live = keep;
        }
        debug_assert_eq!(live, 0, "every sample retires by the last exit");

        Ok(AdaptiveStats {
            batch,
            classes,
            samples_per_exit: spe,
            steps_executed,
            ops_executed,
            ops_fixed: fixed_ops,
        })
    }

    /// [`QuantPlan::predict_adaptive_batch_into`] returning owned values.
    ///
    /// # Errors
    ///
    /// See [`QuantPlan::predict_adaptive_batch_into`].
    pub fn predict_adaptive_batch(
        &mut self,
        inputs: &Tensor,
        n_samples: usize,
        seed: u64,
        policy: &ExitPolicy,
    ) -> Result<AdaptivePrediction, QuantError> {
        let mut out = Vec::new();
        let mut exit_taken = Vec::new();
        let stats = self.predict_adaptive_batch_into(
            inputs,
            n_samples,
            seed,
            policy,
            &mut out,
            &mut exit_taken,
        )?;
        Ok(AdaptivePrediction {
            probs: Tensor::from_vec(out, &[stats.batch, stats.classes])?,
            exit_taken,
            stats,
        })
    }
}

impl CalibratedNetwork {
    /// Compiles the arena-allocated execution plan for one format — pure
    /// bookkeeping over the stored records plus one-time weight packing; no
    /// float inference.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Unsupported`] for formats wider than 16 bits,
    /// or [`QuantError::Internal`] on lowering/record skew.
    pub fn plan(&self, format: FixedPointFormat) -> Result<QuantPlan, QuantError> {
        QuantPlan::compile(self, format)
    }
}

/// Executes one flattened step on the arena.
fn run_step(
    step: &mut Step,
    arena: &mut Arena,
    width: IntWidth,
    exec: Option<Executor>,
    batch: usize,
    mode: Mode,
    masks: MaskGranularity,
) -> Result<(), QuantError> {
    let in_elems = step.in_elems() * batch;
    let out_elems = step.out_elems() * batch;
    let pick_exec = |work: usize| -> Executor {
        match exec {
            Some(e) => e,
            None => {
                if work >= PAR_MACS_THRESHOLD {
                    Executor::global()
                } else {
                    Executor::sequential()
                }
            }
        }
    };
    let is_max_pool = matches!(step.kind, StepKind::MaxPool { .. });
    match &mut step.kind {
        StepKind::Conv(conv) => {
            let (c, h, w) = (step.in_dims[0], step.in_dims[1], step.in_dims[2]);
            let geom = ConvGeometry::square(h, w, conv.kernel, conv.stride, conv.padding);
            let plane = geom.out_h() * geom.out_w();
            let kred = conv.in_c * conv.kernel * conv.kernel;
            let ncols = batch * plane;
            let mut dst = std::mem::take(&mut arena.slots[step.dst]);
            {
                let src = &arena.slots[step.src][..in_elems];
                im2row_i16_into(src, batch, c, &geom, &mut arena.cols)?;
            }
            let exec = pick_exec(conv.out_c * kred * ncols);
            let out = conv.out;
            let (qmin, qmax) = (out.qmin(), out.qmax());
            match width {
                IntWidth::W8 => {
                    let acc = &mut arena.acc32[..conv.out_c * ncols];
                    matmul_wide_i32_into(
                        &exec,
                        &conv.w16,
                        &arena.cols[..kred * ncols],
                        conv.out_c,
                        kred,
                        ncols,
                        acc,
                    )?;
                    for co in 0..conv.out_c {
                        for b in 0..batch {
                            let src_row =
                                &acc[co * ncols + b * plane..co * ncols + (b + 1) * plane];
                            let start = (b * conv.out_c + co) * plane;
                            let dst_row = &mut dst[start..start + plane];
                            requantize_i32_row_into(
                                src_row,
                                conv.bias[co],
                                conv.shift,
                                qmin,
                                qmax,
                                dst_row,
                            );
                        }
                    }
                }
                IntWidth::W16 => {
                    let acc = &mut arena.acc64[..conv.out_c * ncols];
                    matmul_abt_i64_into(
                        &exec,
                        &conv.w16,
                        &arena.cols[..kred * ncols],
                        conv.out_c,
                        kred,
                        ncols,
                        acc,
                    )?;
                    for co in 0..conv.out_c {
                        for b in 0..batch {
                            let src_row =
                                &acc[co * ncols + b * plane..co * ncols + (b + 1) * plane];
                            let start = (b * conv.out_c + co) * plane;
                            let dst_row = &mut dst[start..start + plane];
                            requantize_i64_row_into(
                                src_row,
                                conv.bias[co],
                                conv.shift,
                                qmin,
                                qmax,
                                dst_row,
                            );
                        }
                    }
                }
            }
            arena.slots[step.dst] = dst;
        }
        StepKind::Dense(dense) => {
            let mut dst = std::mem::take(&mut arena.slots[step.dst]);
            let out = dense.out;
            let (qmin, qmax) = (out.qmin(), out.qmax());
            let exec = pick_exec(batch * dense.in_f * dense.out_f);
            match width {
                IntWidth::W8 => {
                    let acc = &mut arena.acc32[..batch * dense.out_f];
                    matmul_wide_i32_into(
                        &exec,
                        &arena.slots[step.src][..in_elems],
                        &dense.wt16,
                        batch,
                        dense.in_f,
                        dense.out_f,
                        acc,
                    )?;
                    for (dst_row, acc_row) in dst[..out_elems]
                        .chunks_exact_mut(dense.out_f)
                        .zip(acc.chunks_exact(dense.out_f))
                    {
                        requantize_i32_row_biased_into(
                            acc_row,
                            &dense.bias,
                            dense.shift,
                            qmin,
                            qmax,
                            dst_row,
                        );
                    }
                }
                IntWidth::W16 => {
                    let acc = &mut arena.acc64[..batch * dense.out_f];
                    matmul_abt_i64_into(
                        &exec,
                        &arena.slots[step.src][..in_elems],
                        &dense.wt16,
                        batch,
                        dense.in_f,
                        dense.out_f,
                        acc,
                    )?;
                    for (dst_row, acc_row) in dst[..out_elems]
                        .chunks_exact_mut(dense.out_f)
                        .zip(acc.chunks_exact(dense.out_f))
                    {
                        requantize_i64_row_biased_into(
                            acc_row,
                            &dense.bias,
                            dense.shift,
                            qmin,
                            qmax,
                            dst_row,
                        );
                    }
                }
            }
            arena.slots[step.dst] = dst;
        }
        StepKind::Relu => {
            if step.src == step.dst {
                for v in arena.slots[step.dst][..in_elems].iter_mut() {
                    *v = (*v).max(0);
                }
            } else {
                let mut dst = std::mem::take(&mut arena.slots[step.dst]);
                for (d, &s) in dst[..in_elems]
                    .iter_mut()
                    .zip(&arena.slots[step.src][..in_elems])
                {
                    *d = s.max(0);
                }
                arena.slots[step.dst] = dst;
            }
        }
        StepKind::MaxPool { kernel, stride } | StepKind::AvgPool { kernel, stride } => {
            let is_max = is_max_pool;
            let (kernel, stride) = (*kernel, *stride);
            let (c, h, w) = (step.in_dims[0], step.in_dims[1], step.in_dims[2]);
            let geom = ConvGeometry::square(h, w, kernel, stride, 0);
            let (oh, ow) = (geom.out_h(), geom.out_w());
            let mut dst = std::mem::take(&mut arena.slots[step.dst]);
            let src = &arena.slots[step.src][..in_elems];
            for b in 0..batch {
                for ch in 0..c {
                    for y in 0..oh {
                        for x in 0..ow {
                            let mut best = i64::MIN;
                            let mut acc = 0i64;
                            for ky in 0..kernel {
                                for kx in 0..kernel {
                                    let iy = y * stride + ky;
                                    let ix = x * stride + kx;
                                    if iy < h && ix < w {
                                        let v = src[((b * c + ch) * h + iy) * w + ix] as i64;
                                        best = best.max(v);
                                        acc += v;
                                    }
                                }
                            }
                            dst[((b * c + ch) * oh + y) * ow + x] = if is_max {
                                best as i16
                            } else {
                                div_round(acc, (kernel * kernel) as i64) as i16
                            };
                        }
                    }
                }
            }
            arena.slots[step.dst] = dst;
        }
        StepKind::GlobalAvgPool => {
            let (c, h, w) = (step.in_dims[0], step.in_dims[1], step.in_dims[2]);
            let plane = (h * w) as i64;
            let mut dst = std::mem::take(&mut arena.slots[step.dst]);
            let src = &arena.slots[step.src][..in_elems];
            for b in 0..batch {
                for ch in 0..c {
                    let start = (b * c + ch) * h * w;
                    let acc: i64 = src[start..start + h * w].iter().map(|&v| v as i64).sum();
                    dst[b * c + ch] = div_round(acc, plane) as i16;
                }
            }
            arena.slots[step.dst] = dst;
        }
        StepKind::Affine(aff) => {
            let (c, h, w) = (step.in_dims[0], step.in_dims[1], step.in_dims[2]);
            let plane = h * w;
            let out = aff.out;
            let (qmin, qmax) = (out.qmin(), out.qmax());
            let apply = |src: &[i16], dst: &mut [i16]| {
                for b in 0..batch {
                    for ch in 0..c {
                        let start = (b * c + ch) * plane;
                        for i in 0..plane {
                            let x = src[start + i] as i64;
                            dst[start + i] =
                                requantize(x * aff.m[ch] + aff.b[ch], MUL_FRAC as i32, qmin, qmax)
                                    as i16;
                        }
                    }
                }
            };
            if step.src == step.dst {
                let mut buf = std::mem::take(&mut arena.slots[step.dst]);
                let src_copy: &mut [i16] = &mut buf[..in_elems];
                // Elementwise read-then-write on the same index is in-place
                // safe; do it in a single pass.
                for b in 0..batch {
                    for ch in 0..c {
                        let start = (b * c + ch) * plane;
                        for v in src_copy[start..start + plane].iter_mut() {
                            *v = requantize(
                                *v as i64 * aff.m[ch] + aff.b[ch],
                                MUL_FRAC as i32,
                                qmin,
                                qmax,
                            ) as i16;
                        }
                    }
                }
                arena.slots[step.dst] = buf;
            } else {
                let mut dst = std::mem::take(&mut arena.slots[step.dst]);
                apply(&arena.slots[step.src][..in_elems], &mut dst[..in_elems]);
                arena.slots[step.dst] = dst;
            }
        }
        StepKind::McDropout {
            rate,
            scale_q,
            params,
            rng,
        } => {
            let sampling = mode.samples_mc_dropout() && *rate > 0.0;
            if !sampling {
                // Stream positions stay aligned: a non-sampling pass draws
                // nothing, exactly like the unplanned op.
                if step.src != step.dst {
                    let mut dst = std::mem::take(&mut arena.slots[step.dst]);
                    dst[..in_elems].copy_from_slice(&arena.slots[step.src][..in_elems]);
                    arena.slots[step.dst] = dst;
                }
                return Ok(());
            }
            let keep = 1.0 - *rate;
            // Filter-wise for NCHW (per-sample dims of rank 3), element-wise
            // otherwise — the same draw order as `draw_keep_mask`. Per-sample
            // granularity draws one sample's worth of masks and tiles them
            // across the batch (`% draws`); for batch 1 the draw count and
            // the applied mask are identical in both modes.
            let (draws, plane) = if step.in_dims.len() == 3 {
                let per_sample = match masks {
                    MaskGranularity::PerBatch => batch,
                    MaskGranularity::PerSample => 1,
                };
                (
                    per_sample * step.in_dims[0],
                    step.in_dims[1] * step.in_dims[2],
                )
            } else {
                let per_sample = match masks {
                    MaskGranularity::PerBatch => in_elems,
                    MaskGranularity::PerSample => in_elems / batch,
                };
                (per_sample, 1)
            };
            for m in arena.mask[..draws].iter_mut() {
                *m = rng.bernoulli(keep);
            }
            let (qmin, qmax) = (params.qmin(), params.qmax());
            let scale_q = *scale_q;
            let mask = &arena.mask;
            let drop_one = |v: i64, kept: bool| -> i16 {
                if kept {
                    requantize(v * scale_q, MUL_FRAC as i32, qmin, qmax) as i16
                } else {
                    0
                }
            };
            if step.src == step.dst {
                let mut buf = std::mem::take(&mut arena.slots[step.dst]);
                for (i, v) in buf[..in_elems].iter_mut().enumerate() {
                    *v = drop_one(*v as i64, mask[(i / plane) % draws]);
                }
                arena.slots[step.dst] = buf;
            } else {
                let mut dst = std::mem::take(&mut arena.slots[step.dst]);
                for (i, (d, &s)) in dst[..in_elems]
                    .iter_mut()
                    .zip(&arena.slots[step.src][..in_elems])
                    .enumerate()
                {
                    *d = drop_one(s as i64, mask[(i / plane) % draws]);
                }
                arena.slots[step.dst] = dst;
            }
        }
        StepKind::Merge {
            m_shift,
            s_shift,
            out,
        } => {
            let (qmin, qmax) = (out.qmin(), out.qmax());
            let (m_shift, s_shift) = (*m_shift, *s_shift);
            let src2 = step.src2.expect("merge has a shortcut source");
            let mut dst = std::mem::take(&mut arena.slots[step.dst]);
            let main = &arena.slots[step.src][..out_elems];
            let short = &arena.slots[src2][..out_elems];
            for ((d, &a), &b) in dst[..out_elems].iter_mut().zip(main).zip(short) {
                let x = requantize(a as i64, m_shift, qmin, qmax);
                let y = requantize(b as i64, s_shift, qmin, qmax);
                *d = (x + y).max(0).min(qmax) as i16;
            }
            arena.slots[step.dst] = dst;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QuantizedMultiExitNetwork;
    use bnn_models::{zoo, ModelConfig};
    use bnn_nn::layer::Mode;

    fn fmt(total: u32, int: u32) -> FixedPointFormat {
        FixedPointFormat::new(total, int).unwrap()
    }

    fn calib_batch(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        Tensor::randn(dims, &mut rng)
    }

    fn lenet(seed: u64) -> bnn_models::MultiExitNetwork {
        zoo::lenet5(
            &ModelConfig::mnist()
                .with_resolution(10, 10)
                .with_width_divisor(8)
                .with_classes(4),
        )
        .with_exits_after_every_block()
        .unwrap()
        .with_exit_mcd(0.25)
        .unwrap()
        .build(seed)
        .unwrap()
    }

    #[test]
    fn planned_forward_is_bit_exact_with_unplanned_across_formats() {
        let net = lenet(3);
        let calib = calib_batch(&[6, 1, 10, 10], 4);
        let calibrated = CalibratedNetwork::calibrate(&net, &calib).unwrap();
        let x = calib_batch(&[3, 1, 10, 10], 5);
        for format in FixedPointFormat::search_space() {
            let mut unplanned = calibrated.quantize(format).unwrap();
            let mut plan = calibrated.plan(format).unwrap();
            let a = unplanned.forward_exits_int(&x, Mode::Eval).unwrap();
            let b = plan.forward_exits_int(&x, Mode::Eval).unwrap();
            assert_eq!(a.len(), b.len());
            for (ta, tb) in a.iter().zip(&b) {
                assert_eq!(ta.as_slice(), tb.as_slice(), "{format} Eval");
            }
            // MC mode with a shared reseed draws identical masks.
            unplanned.reseed_mc_streams(17);
            plan.reseed_mc_streams(17);
            let a = unplanned.forward_exits_int(&x, Mode::McSample).unwrap();
            let b = plan.forward_exits_int(&x, Mode::McSample).unwrap();
            for (ta, tb) in a.iter().zip(&b) {
                assert_eq!(ta.as_slice(), tb.as_slice(), "{format} McSample");
            }
        }
    }

    #[test]
    fn planned_predict_probs_is_bit_exact_with_unplanned() {
        let net = lenet(7);
        let calib = calib_batch(&[6, 1, 10, 10], 8);
        let calibrated = CalibratedNetwork::calibrate(&net, &calib).unwrap();
        let x = calib_batch(&[2, 1, 10, 10], 9);
        for format in [fmt(4, 2), fmt(8, 3), fmt(16, 6)] {
            let mut unplanned =
                QuantizedMultiExitNetwork::from_calibrated(&calibrated, format).unwrap();
            let mut plan = calibrated.plan(format).unwrap();
            for n_samples in [0usize, 1, 3, 4, 7] {
                let a = unplanned.predict_probs(&x, n_samples, 2023).unwrap();
                let b = plan.predict_probs(&x, n_samples, 2023).unwrap();
                assert_eq!(a.as_slice(), b.as_slice(), "{format} n_samples={n_samples}");
            }
        }
    }

    #[test]
    fn plan_reuses_slots_via_liveness() {
        let net = lenet(1);
        let calib = calib_batch(&[4, 1, 10, 10], 2);
        let calibrated = CalibratedNetwork::calibrate(&net, &calib).unwrap();
        let plan = calibrated.plan(fmt(8, 3)).unwrap();
        // The flat plan has many steps but far fewer slots: transient
        // activations ping-pong while block outputs stay pinned.
        assert!(
            plan.num_steps() > plan.num_slots(),
            "{} steps should outnumber {} slots",
            plan.num_steps(),
            plan.num_slots()
        );
        assert_eq!(plan.num_exits(), 2);
        assert_eq!(plan.num_classes(), 4);
        assert_eq!(plan.format(), fmt(8, 3));
    }

    #[test]
    fn residual_batchnorm_network_plan_is_bit_exact_with_unplanned() {
        // A reduced ResNet-18 exercises every plan step kind at once:
        // residual merges (flattened with a pinned skip slot), folded
        // batch-norm affines, global average pooling and MC-dropout exits.
        let net = zoo::resnet18(
            &ModelConfig::cifar10()
                .with_resolution(12, 12)
                .with_width_divisor(16),
        )
        .with_exits_after_every_block()
        .unwrap()
        .with_exit_mcd(0.3)
        .unwrap()
        .build(11)
        .unwrap();
        let calib = calib_batch(&[4, 3, 12, 12], 7);
        let calibrated = CalibratedNetwork::calibrate(&net, &calib).unwrap();
        let x = calib_batch(&[2, 3, 12, 12], 8);
        for format in [fmt(8, 3), fmt(16, 6)] {
            let mut unplanned = calibrated.quantize(format).unwrap();
            let mut plan = calibrated.plan(format).unwrap();
            let a = unplanned.forward_exits_int(&x, Mode::Eval).unwrap();
            let b = plan.forward_exits_int(&x, Mode::Eval).unwrap();
            for (ta, tb) in a.iter().zip(&b) {
                assert_eq!(ta.as_slice(), tb.as_slice(), "{format}");
            }
            let a = unplanned.predict_probs(&x, 4, 99).unwrap();
            let b = plan.predict_probs(&x, 4, 99).unwrap();
            assert_eq!(a.as_slice(), b.as_slice(), "{format} predict");
        }
    }

    #[test]
    fn batched_predict_is_concat_of_single_sample_calls() {
        let net = lenet(21);
        let calib = calib_batch(&[6, 1, 10, 10], 22);
        let calibrated = CalibratedNetwork::calibrate(&net, &calib).unwrap();
        let batch = 3usize;
        let x = calib_batch(&[batch, 1, 10, 10], 23);
        let per = 100usize;
        for format in [fmt(4, 2), fmt(8, 3), fmt(16, 6)] {
            let mut plan = calibrated.plan(format).unwrap();
            let all = plan.predict_probs_batch(&x, 5, 2023).unwrap();
            for b in 0..batch {
                let sample = Tensor::from_vec(
                    x.as_slice()[b * per..(b + 1) * per].to_vec(),
                    &[1, 1, 10, 10],
                )
                .unwrap();
                let one = plan.predict_probs_batch(&sample, 5, 2023).unwrap();
                assert_eq!(
                    &all.as_slice()[b * 4..(b + 1) * 4],
                    one.as_slice(),
                    "{format} sample {b}"
                );
                // Single-sample batched calls are bit-exact with the
                // unbatched entry point (same draws, same indexing).
                let plain = plan.predict_probs(&sample, 5, 2023).unwrap();
                assert_eq!(one.as_slice(), plain.as_slice(), "{format} sample {b}");
            }
        }
    }

    #[test]
    fn adaptive_never_matches_fixed_batch_bitwise() {
        let net = lenet(41);
        let calib = calib_batch(&[6, 1, 10, 10], 42);
        let calibrated = CalibratedNetwork::calibrate(&net, &calib).unwrap();
        let x = calib_batch(&[3, 1, 10, 10], 43);
        for format in [fmt(4, 2), fmt(8, 3), fmt(16, 6)] {
            let mut plan = calibrated.plan(format).unwrap();
            let fixed = plan.predict_probs_batch(&x, 6, 2023).unwrap();
            let adaptive = plan
                .predict_adaptive_batch(&x, 6, 2023, &ExitPolicy::Never)
                .unwrap();
            assert_eq!(fixed.as_slice(), adaptive.probs.as_slice(), "{format}");
            assert_eq!(adaptive.exit_taken, vec![1; 3], "{format}");
            assert_eq!(adaptive.stats.ops_executed, adaptive.stats.ops_fixed);
            assert!(adaptive.stats.ops_fixed > 0);
        }
    }

    #[test]
    fn adaptive_rows_match_single_sample_evaluation() {
        let net = lenet(45);
        let calib = calib_batch(&[6, 1, 10, 10], 46);
        let calibrated = CalibratedNetwork::calibrate(&net, &calib).unwrap();
        let batch = 4usize;
        let x = calib_batch(&[batch, 1, 10, 10], 47);
        let per = 100usize;
        for format in [fmt(4, 2), fmt(8, 3), fmt(16, 6)] {
            let mut plan = calibrated.plan(format).unwrap();
            for policy in [
                ExitPolicy::Confidence { threshold: 0.3 },
                ExitPolicy::Entropy { threshold: 0.97 },
                ExitPolicy::Confidence { threshold: 0.0 }, // all retire at exit 0
                ExitPolicy::Confidence { threshold: 1.0 }, // none retire early
            ] {
                for n_samples in [0usize, 6] {
                    let all = plan
                        .predict_adaptive_batch(&x, n_samples, 2023, &policy)
                        .unwrap();
                    for b in 0..batch {
                        let sample = Tensor::from_vec(
                            x.as_slice()[b * per..(b + 1) * per].to_vec(),
                            &[1, 1, 10, 10],
                        )
                        .unwrap();
                        let one = plan
                            .predict_adaptive_batch(&sample, n_samples, 2023, &policy)
                            .unwrap();
                        assert_eq!(
                            &all.probs.as_slice()[b * 4..(b + 1) * 4],
                            one.probs.as_slice(),
                            "{format} {policy} n={n_samples} row {b}"
                        );
                        assert_eq!(
                            all.exit_taken[b], one.exit_taken[0],
                            "{format} {policy} n={n_samples} row {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn adaptive_saves_ops_when_samples_retire_early() {
        let net = lenet(51);
        let calib = calib_batch(&[6, 1, 10, 10], 52);
        let calibrated = CalibratedNetwork::calibrate(&net, &calib).unwrap();
        let mut plan = calibrated.plan(fmt(8, 3)).unwrap();
        let x = calib_batch(&[4, 1, 10, 10], 53);
        let all_early = plan
            .predict_adaptive_batch(&x, 6, 2023, &ExitPolicy::Confidence { threshold: 0.0 })
            .unwrap();
        assert_eq!(all_early.exit_taken, vec![0; 4]);
        assert!(all_early.stats.ops_executed < all_early.stats.ops_fixed);
        assert!(all_early.stats.ops_saved_fraction() > 0.0);
        // Never pays full freight.
        let never = plan
            .predict_adaptive_batch(&x, 6, 2023, &ExitPolicy::Never)
            .unwrap();
        assert_eq!(never.stats.ops_saved_fraction(), 0.0);
    }

    #[test]
    fn adaptive_rejects_invalid_policy() {
        let net = lenet(55);
        let calib = calib_batch(&[4, 1, 10, 10], 56);
        let calibrated = CalibratedNetwork::calibrate(&net, &calib).unwrap();
        let mut plan = calibrated.plan(fmt(8, 3)).unwrap();
        let x = Tensor::ones(&[1, 1, 10, 10]);
        for bad in [f64::NAN, f64::INFINITY, -0.5, 1.5] {
            assert!(matches!(
                plan.predict_adaptive_batch(&x, 4, 1, &ExitPolicy::Entropy { threshold: bad }),
                Err(QuantError::InvalidInput(_))
            ));
        }
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        let net = lenet(31);
        let calib = calib_batch(&[4, 1, 10, 10], 32);
        let calibrated = CalibratedNetwork::calibrate(&net, &calib).unwrap();
        let mut plan = calibrated.plan(fmt(8, 3)).unwrap();
        assert_eq!(plan.in_dims(), &[1, 10, 10]);
        let empty = Tensor::from_vec(Vec::new(), &[0, 1, 10, 10]).unwrap();
        assert!(matches!(
            plan.predict_probs(&empty, 4, 1),
            Err(QuantError::InvalidInput(_))
        ));
        let wrong = calib_batch(&[2, 1, 9, 9], 33);
        assert!(matches!(
            plan.predict_probs(&wrong, 4, 1),
            Err(QuantError::InvalidInput(_))
        ));
        assert!(matches!(
            plan.predict_probs_batch(&wrong, 4, 1),
            Err(QuantError::InvalidInput(_))
        ));
        let no_batch_axis = calib_batch(&[1, 10, 10], 34);
        assert!(matches!(
            plan.predict_probs(&no_batch_axis, 4, 1),
            Err(QuantError::InvalidInput(_))
        ));
    }

    #[test]
    fn planned_mc_prediction_is_seed_reproducible() {
        let net = lenet(11);
        let calib = calib_batch(&[4, 1, 10, 10], 12);
        let calibrated = CalibratedNetwork::calibrate(&net, &calib).unwrap();
        let mut plan = calibrated.plan(fmt(8, 3)).unwrap();
        let x = calib_batch(&[3, 1, 10, 10], 13);
        let a = plan.predict_probs(&x, 4, 2023).unwrap();
        let b = plan.predict_probs(&x, 4, 2023).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        let c = plan.predict_probs(&x, 4, 7).unwrap();
        assert_ne!(a.as_slice(), c.as_slice());
        // rows are simplexes
        for row in a.as_slice().chunks(4) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }
}
