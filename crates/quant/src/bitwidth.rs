//! Bitwidth search: pick the narrowest format that does not degrade quality.

use crate::fixed::FixedPointFormat;
use crate::QuantError;

/// Result of evaluating one candidate format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateResult {
    /// The candidate format.
    pub format: FixedPointFormat,
    /// Quality metric of the quantized model (higher is better, e.g. accuracy).
    pub quality: f64,
    /// Whether the candidate met the degradation tolerance.
    pub accepted: bool,
}

/// Greedy bitwidth search over a candidate list.
///
/// Candidates are evaluated narrowest-first; the first candidate whose quality
/// is within `tolerance` of the full-precision baseline wins. This mirrors the
/// paper's Phase 3 requirement of "not reducing the algorithmic performance
/// compared to the default configurations" while minimising hardware cost.
#[derive(Debug, Clone, PartialEq)]
pub struct BitwidthSearch {
    candidates: Vec<FixedPointFormat>,
    tolerance: f64,
}

impl BitwidthSearch {
    /// Creates a search over the given candidates with an absolute quality
    /// degradation tolerance (e.g. 0.01 = at most one accuracy point drop).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidSearch`] if there are no candidates or the
    /// tolerance is negative.
    pub fn new(candidates: Vec<FixedPointFormat>, tolerance: f64) -> Result<Self, QuantError> {
        if candidates.is_empty() {
            return Err(QuantError::InvalidSearch("no candidate formats".into()));
        }
        if tolerance < 0.0 {
            return Err(QuantError::InvalidSearch(format!(
                "tolerance must be non-negative, got {tolerance}"
            )));
        }
        let mut candidates = candidates;
        candidates.sort_by_key(FixedPointFormat::total_bits);
        Ok(BitwidthSearch {
            candidates,
            tolerance,
        })
    }

    /// The paper's search space (`{4, 6, 8, 16}` bits) with the given tolerance.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidSearch`] if the tolerance is negative.
    pub fn paper_defaults(tolerance: f64) -> Result<Self, QuantError> {
        BitwidthSearch::new(FixedPointFormat::search_space(), tolerance)
    }

    /// Runs the search. `evaluate` maps a candidate format to a quality metric
    /// (higher is better); `baseline_quality` is the full-precision reference.
    ///
    /// Returns every evaluated candidate plus the selected one (the narrowest
    /// accepted candidate, or the widest candidate if none is accepted).
    pub fn run<F>(
        &self,
        baseline_quality: f64,
        mut evaluate: F,
    ) -> (Vec<CandidateResult>, FixedPointFormat)
    where
        F: FnMut(FixedPointFormat) -> f64,
    {
        let mut results = Vec::with_capacity(self.candidates.len());
        let mut selected = None;
        for &format in &self.candidates {
            let quality = evaluate(format);
            let accepted = quality + self.tolerance >= baseline_quality;
            results.push(CandidateResult {
                format,
                quality,
                accepted,
            });
            if accepted && selected.is_none() {
                selected = Some(format);
            }
        }
        let fallback = *self.candidates.last().expect("non-empty");
        (results, selected.unwrap_or(fallback))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(BitwidthSearch::new(vec![], 0.01).is_err());
        assert!(BitwidthSearch::paper_defaults(-0.1).is_err());
        assert!(BitwidthSearch::paper_defaults(0.01).is_ok());
    }

    #[test]
    fn picks_narrowest_acceptable_format() {
        let search = BitwidthSearch::paper_defaults(0.01).unwrap();
        // Simulated quality: 4 bits bad, 6 bits bad, 8 bits fine, 16 bits fine.
        let (results, chosen) = search.run(0.80, |fmt| match fmt.total_bits() {
            4 => 0.60,
            6 => 0.75,
            8 => 0.795,
            _ => 0.80,
        });
        assert_eq!(chosen.total_bits(), 8);
        assert_eq!(results.len(), 4);
        assert!(!results[0].accepted);
        assert!(results[2].accepted);
    }

    #[test]
    fn falls_back_to_widest_when_nothing_accepted() {
        let search = BitwidthSearch::paper_defaults(0.0).unwrap();
        let (_, chosen) = search.run(0.99, |_| 0.5);
        assert_eq!(chosen.total_bits(), 16);
    }

    #[test]
    fn candidates_sorted_narrowest_first() {
        let search = BitwidthSearch::new(
            vec![
                FixedPointFormat::new(16, 6).unwrap(),
                FixedPointFormat::new(4, 2).unwrap(),
                FixedPointFormat::new(8, 3).unwrap(),
            ],
            0.0,
        )
        .unwrap();
        let mut seen = Vec::new();
        let (_, _) = search.run(0.0, |fmt| {
            seen.push(fmt.total_bits());
            1.0
        });
        assert_eq!(seen, vec![4, 8, 16]);
    }
}
