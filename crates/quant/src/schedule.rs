//! Backend-readable snapshots of a compiled plan's flattened schedule.
//!
//! [`PlanSchedule`] is the *export format* of a [`QuantPlan`]: the identical
//! flattened step list the plan executes — packed integer weight codes,
//! accumulator-scale biases, requantize shifts, per-tensor [`QuantParams`]
//! and the liveness-planned arena slot assignment — with the runtime state
//! (RNG streams, arena buffers, executors) stripped. Code generators walk it
//! to emit a design that computes exactly what the integer path computed
//! when the design point was scored; `bnn_hls::sim` interprets it as the
//! golden reference against [`QuantPlan::predict_probs`].
//!
//! Everything in a schedule is static: the same calibration record and
//! format always produce the same schedule, so generated artifacts (HLS
//! sources, golden files) are deterministic.
//!
//! Obtain one with [`QuantPlan::schedule`]:
//!
//! ```
//! use bnn_models::{zoo, ModelConfig};
//! use bnn_quant::{CalibratedNetwork, FixedPointFormat};
//! use bnn_tensor::rng::Xoshiro256StarStar;
//! use bnn_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = zoo::lenet5(&ModelConfig::mnist().with_resolution(12, 12).with_width_divisor(4))
//!     .with_exits_after_every_block()?
//!     .with_exit_mcd(0.25)?;
//! let net = spec.build(7)?;
//! let mut rng = Xoshiro256StarStar::seed_from_u64(1);
//! let calib = Tensor::randn(&[4, 1, 12, 12], &mut rng);
//! let calibrated = CalibratedNetwork::calibrate(&net, &calib)?;
//! let plan = calibrated.plan(FixedPointFormat::new(8, 3)?)?;
//!
//! let schedule = plan.schedule();
//! assert_eq!(schedule.num_steps(), plan.num_steps());
//! assert_eq!(schedule.slot_elems.len(), plan.num_slots());
//! assert!(schedule.total_macs() > 0);
//! # Ok(())
//! # }
//! ```
//!
//! [`QuantPlan`]: crate::QuantPlan
//! [`QuantPlan::predict_probs`]: crate::QuantPlan::predict_probs
//! [`QuantPlan::schedule`]: crate::QuantPlan::schedule

use crate::fixed::FixedPointFormat;
use crate::params::QuantParams;

/// Fractional bits of the fixed-point multipliers the schedule's
/// [`ScheduleOp::Affine`] and [`ScheduleOp::McDropout`] steps scale by
/// (batch-norm affines and the inverted-dropout `1/keep` factor): the
/// products are requantized by a right-shift of this many bits. Interpreters
/// must shift by exactly this amount to stay bit-exact with the plan.
pub const MUL_FRAC: u32 = crate::net::MUL_FRAC;

/// The arithmetic of one flattened step, with every constant the step folds
/// in at compile time (weight codes, biases, shifts, output formats).
///
/// Weight codes are stored widened to `i16` regardless of the format's
/// storage width — exactly the layout the plan's kernels consume. Biases are
/// at the accumulator scale `2^(w_frac + in_frac)`; `shift` brings the
/// accumulator down to the output format's fractional bits.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleOp {
    /// 2-D convolution on packed `[out_c, in_c*kernel*kernel]` weight codes.
    Conv {
        /// Widened weight codes, row-major `[out_c, in_c*kernel*kernel]`
        /// with the reduction ordered `(in_c, ky, kx)`.
        weights: Vec<i16>,
        /// Per-output-channel bias at the accumulator scale.
        bias: Vec<i64>,
        /// Output channels.
        out_c: usize,
        /// Input channels.
        in_c: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
        /// Accumulator-to-output requantization shift (right shift).
        shift: i32,
        /// Fractional bits of the weight codes.
        w_frac: u32,
        /// Output activation format.
        out: QuantParams,
    },
    /// Dense layer on transposed `[out_f, in_f]` weight codes.
    Dense {
        /// Widened weight codes, transposed row-major `[out_f, in_f]`.
        weights_t: Vec<i16>,
        /// Per-output-feature bias at the accumulator scale.
        bias: Vec<i64>,
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
        /// Accumulator-to-output requantization shift (right shift).
        shift: i32,
        /// Fractional bits of the weight codes.
        w_frac: u32,
        /// Output activation format.
        out: QuantParams,
    },
    /// Elementwise `max(0, x)`; the value keeps its input format.
    Relu,
    /// Square max pooling (no padding); the value keeps its input format.
    MaxPool {
        /// Square window size.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Square average pooling: window sum divided by `kernel²` with
    /// round-half-away-from-zero; the value keeps its input format.
    AvgPool {
        /// Square window size.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Whole-plane average per channel (same rounding as [`Self::AvgPool`]).
    GlobalAvgPool,
    /// Folded batch-norm: per-channel `(x*m + b) >> MUL_FRAC`, saturated
    /// into the output format (see [`MUL_FRAC`]).
    Affine {
        /// Per-channel multipliers, `MUL_FRAC` fractional bits.
        m: Vec<i64>,
        /// Per-channel offsets, `MUL_FRAC` fractional bits at output scale.
        b: Vec<i64>,
        /// Output activation format.
        out: QuantParams,
    },
    /// Monte-Carlo dropout: in sampling passes, kept values are scaled by
    /// `scale_q >> MUL_FRAC` (inverted dropout), dropped values become 0;
    /// deterministic passes copy through and draw nothing.
    McDropout {
        /// Dropout probability.
        rate: f64,
        /// Quantized `1/(1-rate)` at `MUL_FRAC` fractional bits.
        scale_q: i64,
        /// The value's format (used for saturation of kept values).
        params: QuantParams,
    },
    /// Residual merge: requantize both paths into the output format, add,
    /// clamp into `[0, qmax]` (the merged ReLU).
    Merge {
        /// Main-path requantization shift.
        m_shift: i32,
        /// Shortcut-path requantization shift.
        s_shift: i32,
        /// Output activation format.
        out: QuantParams,
    },
}

impl ScheduleOp {
    /// Stable lower-case op name (matches the lowering names where one
    /// exists; `"merge"` for the residual join).
    pub fn name(&self) -> &'static str {
        match self {
            ScheduleOp::Conv { .. } => "conv2d",
            ScheduleOp::Dense { .. } => "dense",
            ScheduleOp::Relu => "relu",
            ScheduleOp::MaxPool { .. } => "max_pool2d",
            ScheduleOp::AvgPool { .. } => "avg_pool2d",
            ScheduleOp::GlobalAvgPool => "global_avg_pool2d",
            ScheduleOp::Affine { .. } => "affine",
            ScheduleOp::McDropout { .. } => "mc_dropout",
            ScheduleOp::Merge { .. } => "merge",
        }
    }

    /// The output format this op requantizes into, if it defines one.
    /// Format-preserving ops (relu, pools, dropout) return `None`: their
    /// output keeps the source value's format.
    pub fn out_params(&self) -> Option<QuantParams> {
        match self {
            ScheduleOp::Conv { out, .. }
            | ScheduleOp::Dense { out, .. }
            | ScheduleOp::Affine { out, .. }
            | ScheduleOp::Merge { out, .. } => Some(*out),
            ScheduleOp::McDropout { params, .. } => Some(*params),
            _ => None,
        }
    }

    /// Whether this op is a multiply-accumulate layer (conv/dense) — the
    /// ops the hardware MAC-count cross-check totals.
    pub fn is_mac(&self) -> bool {
        matches!(self, ScheduleOp::Conv { .. } | ScheduleOp::Dense { .. })
    }
}

/// One flattened step: the op plus its arena slot assignment and static
/// per-sample shapes — a direct image of the step the plan executes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStep {
    /// The step's arithmetic and folded constants.
    pub op: ScheduleOp,
    /// Source slot (the main path of a merge).
    pub src: usize,
    /// Second source slot (the shortcut path of a merge).
    pub src2: Option<usize>,
    /// Destination slot (may equal `src` for in-place elementwise steps).
    pub dst: usize,
    /// Per-sample dims of the source activation (batch axis stripped).
    pub in_dims: Vec<usize>,
    /// Per-sample dims of the output activation.
    pub out_dims: Vec<usize>,
    /// Static per-sample integer-op estimate (MACs for conv/dense, touched
    /// elements otherwise) — the same figure `QuantPlan::fixed_cost` sums.
    pub unit_ops: u64,
}

/// One exit branch of the schedule, in attachment order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleExit {
    /// The exit's steps, executed after the backbone prefix.
    pub steps: Vec<ScheduleStep>,
    /// Slot holding the exit's output codes.
    pub out_slot: usize,
    /// Calibrated output (logit) format.
    pub out_params: QuantParams,
    /// Per-sample output dims.
    pub out_dims: Vec<usize>,
    /// Backbone block this exit reads from.
    pub after_block: usize,
}

/// The full flattened schedule of a compiled [`QuantPlan`]: backbone steps,
/// exit branches and the arena slot plan. See the [module docs](self).
///
/// [`QuantPlan`]: crate::QuantPlan
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSchedule {
    /// The fixed-point format the plan was compiled for.
    pub format: FixedPointFormat,
    /// Number of predicted classes.
    pub classes: usize,
    /// Calibrated input activation format.
    pub in_params: QuantParams,
    /// Per-sample input dims (batch axis stripped).
    pub in_dims: Vec<usize>,
    /// Arena slot the quantized input batch is written to.
    pub input_slot: usize,
    /// Backbone steps in execution order.
    pub backbone: Vec<ScheduleStep>,
    /// Exit branches in attachment order.
    pub exits: Vec<ScheduleExit>,
    /// Per-slot per-sample element capacity (the design's activation
    /// buffer sizes).
    pub slot_elems: Vec<usize>,
}

impl PlanSchedule {
    /// Iterates every step: backbone first, then exits in attachment order
    /// — the stream order MC-dropout mask streams are assigned in.
    pub fn steps(&self) -> impl Iterator<Item = &ScheduleStep> {
        self.backbone
            .iter()
            .chain(self.exits.iter().flat_map(|e| e.steps.iter()))
    }

    /// Total number of flattened steps (backbone plus all exits).
    pub fn num_steps(&self) -> usize {
        self.backbone.len() + self.exits.iter().map(|e| e.steps.len()).sum::<usize>()
    }

    /// Total per-sample multiply-accumulates of the conv/dense steps — the
    /// figure the `bnn-hw` layer model prices, so generated designs can be
    /// cross-checked against phase-2/3 scores.
    pub fn total_macs(&self) -> u64 {
        self.steps()
            .filter(|s| s.op.is_mac())
            .map(|s| s.unit_ops)
            .sum()
    }

    /// Total per-sample integer ops over every step (the
    /// `QuantPlan::fixed_cost` unit before batch/pass scaling).
    pub fn total_unit_ops(&self) -> u64 {
        self.steps().map(|s| s.unit_ops).sum()
    }

    /// Total per-sample activation buffer elements (sum of slot capacities).
    pub fn buffer_elems(&self) -> usize {
        self.slot_elems.iter().sum()
    }

    /// Total emitted parameters: weight codes plus biases plus affine
    /// constant pairs.
    pub fn weight_params(&self) -> usize {
        self.steps()
            .map(|s| match &s.op {
                ScheduleOp::Conv { weights, bias, .. } => weights.len() + bias.len(),
                ScheduleOp::Dense {
                    weights_t, bias, ..
                } => weights_t.len() + bias.len(),
                ScheduleOp::Affine { m, b, .. } => m.len() + b.len(),
                _ => 0,
            })
            .sum()
    }

    /// Depth of the longest step chain one input flows through: the
    /// backbone plus the deepest exit branch.
    pub fn pipeline_depth(&self) -> usize {
        self.backbone.len() + self.exits.iter().map(|e| e.steps.len()).max().unwrap_or(0)
    }
}
