//! [`QuantizedTensor`]: dense integer-code storage for the fixed-point path.

use crate::error::QuantError;
use crate::params::{IntWidth, QuantParams};
use bnn_tensor::Tensor;

/// The integer codes of a quantized tensor, stored at the narrowest width
/// that holds the format ([`QuantParams::width`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantData {
    /// 8-bit codes (formats up to 8 total bits).
    I8(Vec<i8>),
    /// 16-bit codes (formats of 9 to 16 total bits).
    I16(Vec<i16>),
}

impl QuantData {
    /// Number of codes.
    pub fn len(&self) -> usize {
        match self {
            QuantData::I8(v) => v.len(),
            QuantData::I16(v) => v.len(),
        }
    }

    /// Returns `true` if there are no codes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads one code widened to `i64`.
    pub fn code(&self, index: usize) -> i64 {
        match self {
            QuantData::I8(v) => v[index] as i64,
            QuantData::I16(v) => v[index] as i64,
        }
    }

    /// Collects every code widened to `i64` (diagnostics and tests).
    pub fn codes_i64(&self) -> Vec<i64> {
        match self {
            QuantData::I8(v) => v.iter().map(|&c| c as i64).collect(),
            QuantData::I16(v) => v.iter().map(|&c| c as i64).collect(),
        }
    }

    /// Builds storage of the given width from wide codes, saturating into
    /// the storage range (callers saturate into the *format* range first;
    /// this is a final safety clamp at the storage boundary).
    pub fn from_codes(width: IntWidth, codes: impl Iterator<Item = i64>) -> QuantData {
        match width {
            IntWidth::W8 => QuantData::I8(codes.map(|c| c.clamp(-128, 127) as i8).collect()),
            IntWidth::W16 => QuantData::I16(codes.map(|c| c.clamp(-32768, 32767) as i16).collect()),
        }
    }
}

/// A dense tensor of fixed-point integer codes plus its [`QuantParams`].
///
/// This is the value type flowing through the integer inference path: `i8`
/// or `i16` storage, with wide (`i32`/`i64`) accumulation and explicit
/// saturation happening inside the consuming ops (see `bnn_tensor::int`).
///
/// # Example
///
/// ```
/// use bnn_quant::{FixedPointFormat, QuantParams, QuantizedTensor};
/// use bnn_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = QuantParams::new(FixedPointFormat::new(8, 3)?)?;
/// let t = Tensor::from_vec(vec![0.3751, -1.26, 100.0], &[3])?;
/// let q = QuantizedTensor::quantize(&t, params);
/// // 100.0 saturates at the format maximum
/// assert_eq!(q.dequantize().as_slice(), &[0.375, -1.25, 3.96875]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    data: QuantData,
    dims: Vec<usize>,
    params: QuantParams,
}

impl QuantizedTensor {
    /// Quantizes a float tensor onto the params' grid (round to nearest,
    /// saturate at the format range).
    pub fn quantize(tensor: &Tensor, params: QuantParams) -> QuantizedTensor {
        let codes = tensor.as_slice().iter().map(|&v| params.quantize_value(v));
        QuantizedTensor {
            data: QuantData::from_codes(params.width(), codes),
            dims: tensor.dims().to_vec(),
            params,
        }
    }

    /// Wraps pre-computed codes (they must already be saturated into the
    /// format range).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Internal`] if the code count does not match the
    /// dimensions.
    pub fn from_parts(
        data: QuantData,
        dims: Vec<usize>,
        params: QuantParams,
    ) -> Result<QuantizedTensor, QuantError> {
        let expected: usize = dims.iter().product();
        if data.len() != expected {
            return Err(QuantError::Internal(format!(
                "quantized tensor with dims {dims:?} needs {expected} codes, got {}",
                data.len()
            )));
        }
        Ok(QuantizedTensor { data, dims, params })
    }

    /// Reconstructs the real-valued tensor `code * scale`.
    pub fn dequantize(&self) -> Tensor {
        let values: Vec<f32> = match &self.data {
            QuantData::I8(v) => v
                .iter()
                .map(|&c| self.params.dequantize_value(c as i64))
                .collect(),
            QuantData::I16(v) => v
                .iter()
                .map(|&c| self.params.dequantize_value(c as i64))
                .collect(),
        };
        Tensor::from_vec(values, &self.dims).expect("dims validated at construction")
    }

    /// The integer codes.
    pub fn data(&self) -> &QuantData {
        &self.data
    }

    /// Decomposes the tensor into its codes, dimensions and parameters
    /// without copying — the integer op chain threads ownership through
    /// shape-only ops (flatten, identity) instead of cloning code buffers.
    pub fn into_parts(self) -> (QuantData, Vec<usize>, QuantParams) {
        (self.data, self.dims, self.params)
    }

    /// The tensor dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The quantization parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedPointFormat;

    fn params(total: u32, int: u32) -> QuantParams {
        QuantParams::new(FixedPointFormat::new(total, int).unwrap()).unwrap()
    }

    #[test]
    fn quantize_dequantize_round_trip_on_grid() {
        let p = params(8, 3);
        let t = Tensor::from_vec(vec![0.375, -1.25, 2.0, 0.0], &[2, 2]).unwrap();
        let q = QuantizedTensor::quantize(&t, p);
        assert_eq!(q.dequantize().as_slice(), t.as_slice());
        assert_eq!(q.dims(), &[2, 2]);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn quantize_matches_fake_quantization() {
        let p = params(6, 2);
        let t = Tensor::from_vec((-20..20).map(|i| i as f32 * 0.173).collect(), &[40]).unwrap();
        let q = QuantizedTensor::quantize(&t, p).dequantize();
        let fake = t.map(|v| p.format().quantize(v));
        assert_eq!(q.as_slice(), fake.as_slice());
    }

    #[test]
    fn storage_width_follows_format() {
        let t = Tensor::ones(&[3]);
        let q8 = QuantizedTensor::quantize(&t, params(8, 3));
        assert!(matches!(q8.data(), QuantData::I8(_)));
        let q16 = QuantizedTensor::quantize(&t, params(16, 6));
        assert!(matches!(q16.data(), QuantData::I16(_)));
        assert_eq!(q8.data().codes_i64(), vec![32, 32, 32]);
        assert_eq!(q16.data().code(0), 1024);
    }

    #[test]
    fn max_magnitude_values_saturate_to_code_extremes() {
        // Saturation edge case: values far beyond the range pin at
        // qmin/qmax instead of wrapping around.
        let p = params(4, 2);
        let t = Tensor::from_vec(vec![1e6, -1e6], &[2]).unwrap();
        let q = QuantizedTensor::quantize(&t, p);
        assert_eq!(q.data().codes_i64(), vec![p.qmax(), p.qmin()]);
    }

    #[test]
    fn from_parts_validates_dims() {
        let p = params(8, 3);
        let data = QuantData::I8(vec![1, 2, 3]);
        assert!(QuantizedTensor::from_parts(data.clone(), vec![2, 2], p).is_err());
        assert!(QuantizedTensor::from_parts(data, vec![3], p).is_ok());
    }
}
