//! Post-training quantization of tensors and whole networks.

use crate::error::QuantError;
use crate::fixed::{FixedPointFormat, QuantizationError};
use bnn_nn::network::Network;
use bnn_tensor::Tensor;

/// Returns a fake-quantized copy of a tensor (every value rounded to the
/// format's grid and saturated to its range).
pub fn quantize_tensor(tensor: &Tensor, format: FixedPointFormat) -> Tensor {
    tensor.map(|v| format.quantize(v))
}

/// Measures the error of quantizing a tensor with a format.
pub fn tensor_quantization_error(tensor: &Tensor, format: FixedPointFormat) -> QuantizationError {
    QuantizationError::measure(tensor.as_slice(), format)
}

/// Quantizes every trainable parameter of a network in place and returns the
/// worst-case per-parameter error statistics.
///
/// This is post-training *fake* quantization: weights are snapped to the
/// fixed-point grid, after which the (float) inference path evaluates the
/// quantized model. Phase 3 of the transformation framework uses this as the
/// float A/B reference next to the true integer path built by
/// [`crate::net::QuantizedMultiExitNetwork`].
///
/// # Errors
///
/// Returns [`QuantError::NonFinite`] — without modifying any parameter — if
/// a parameter contains NaN or infinite values: those have no fixed-point
/// representation, and snapping them to the grid would silently launder a
/// diverged training run into a seemingly valid quantized model.
pub fn quantize_network(
    network: &mut dyn Network,
    format: FixedPointFormat,
) -> Result<QuantizationError, QuantError> {
    let mut worst = QuantizationError::default();
    let mut params = network.params_mut();
    for (i, param) in params.iter().enumerate() {
        if let Some(bad) = param.value.as_slice().iter().find(|v| !v.is_finite()) {
            return Err(QuantError::NonFinite(format!(
                "parameter tensor {i} contains non-finite value {bad}"
            )));
        }
    }
    for param in &mut params {
        let err = QuantizationError::measure(param.value.as_slice(), format);
        format.quantize_slice(param.value.as_mut_slice());
        if err.max_abs > worst.max_abs {
            worst.max_abs = err.max_abs;
        }
        worst.mse = worst.mse.max(err.mse);
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_models::{zoo, ModelConfig};
    use bnn_nn::layer::Mode;
    use bnn_tensor::rng::Xoshiro256StarStar;

    #[test]
    fn quantize_tensor_snaps_to_grid() {
        let fmt = FixedPointFormat::new(8, 3).unwrap();
        let t = Tensor::from_vec(vec![0.33, -1.26, 7.9], &[3]).unwrap();
        let q = quantize_tensor(&t, fmt);
        for &v in q.as_slice() {
            let steps = v / fmt.epsilon();
            assert!((steps - steps.round()).abs() < 1e-4);
        }
        // saturation
        assert!(q.as_slice()[2] <= fmt.max_value());
    }

    #[test]
    fn tensor_error_decreases_with_width() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let t = Tensor::randn(&[64, 64], &mut rng);
        let e4 = tensor_quantization_error(&t, FixedPointFormat::new(4, 2).unwrap());
        let e16 = tensor_quantization_error(&t, FixedPointFormat::new(16, 6).unwrap());
        assert!(e16.mse < e4.mse);
    }

    #[test]
    fn quantize_network_changes_weights_but_preserves_shapes() {
        let spec = zoo::lenet5(
            &ModelConfig::mnist()
                .with_resolution(12, 12)
                .with_width_divisor(4),
        );
        let mut net = spec.build(3).unwrap();
        let x = Tensor::ones(&[1, 1, 12, 12]);
        let before = net.forward_final(&x, Mode::Eval).unwrap();
        let err = quantize_network(&mut net, FixedPointFormat::new(6, 2).unwrap()).unwrap();
        assert!(err.max_abs > 0.0);
        let after = net.forward_final(&x, Mode::Eval).unwrap();
        assert_eq!(before.dims(), after.dims());
        // 6-bit quantization perturbs the output but does not destroy it
        assert_ne!(before.as_slice(), after.as_slice());
        assert!(after.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sixteen_bit_quantization_barely_changes_outputs() {
        let spec = zoo::lenet5(
            &ModelConfig::mnist()
                .with_resolution(12, 12)
                .with_width_divisor(4),
        );
        let mut net = spec.build(4).unwrap();
        let x = Tensor::ones(&[1, 1, 12, 12]);
        let before = net.forward_final(&x, Mode::Eval).unwrap();
        let _ = quantize_network(&mut net, FixedPointFormat::new(16, 6).unwrap()).unwrap();
        let after = net.forward_final(&x, Mode::Eval).unwrap();
        let max_diff = before
            .as_slice()
            .iter()
            .zip(after.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 0.05, "max diff {max_diff}");
    }

    #[test]
    fn non_finite_parameters_are_rejected_without_mutation() {
        let spec = zoo::lenet5(
            &ModelConfig::mnist()
                .with_resolution(12, 12)
                .with_width_divisor(4),
        );
        let mut net = spec.build(5).unwrap();
        net.params_mut()[0].value.as_mut_slice()[3] = f32::NAN;
        let before: Vec<f32> = net.params_mut()[1].value.as_slice().to_vec();
        let err = quantize_network(&mut net, FixedPointFormat::new(8, 3).unwrap()).unwrap_err();
        assert!(matches!(err, crate::QuantError::NonFinite(_)));
        // the healthy tensors were left untouched — no partial quantization
        assert_eq!(net.params_mut()[1].value.as_slice(), &before[..]);
    }
}
