//! The true fixed-point integer inference path: calibrated quantized
//! networks executing on `i8`/`i16` codes with `i32`/`i64` accumulation.
//!
//! The float kernels evaluate *fake-quantized* models (weights snapped to a
//! grid, everything else `f32`). This module executes the model the way an
//! `ap_fixed` FPGA datapath would:
//!
//! 1. **Lowering.** [`bnn_nn::Layer::lowering`] turns a trained layer stack
//!    into backend-neutral [`LayerLowering`] descriptions (weights, geometry,
//!    folded batch-norm constants, dropout rates).
//! 2. **Calibration.** A representative batch runs through the float
//!    reference of each op; each activation edge gets a per-tensor
//!    [`QuantParams`] — the `W`-bit format whose integer-bit split just
//!    covers the observed range. Weights are calibrated per-tensor the same
//!    way. Every scale is a power of two, so *requantization between any two
//!    formats is an exact rounding bit-shift* — no approximate multipliers.
//! 3. **Integer execution.** Conv/Dense run on the integer matmul/im2col
//!    kernels of [`bnn_tensor::int`]; accumulators are `i32` (8-bit codes)
//!    or `i64` (16-bit codes) and exact; biases are pre-quantized at the
//!    accumulator scale; results are requantized (round to nearest, ties
//!    away from zero) and **saturated** into the output format. ReLU and max
//!    pooling are pure integer ops; average pooling divides with
//!    round-half-away-from-zero; batch-norm affines and the MC-dropout
//!    `1/keep` scale use 12-fractional-bit fixed-point multipliers.
//! 4. **MC sampling.** Monte-Carlo dropout masks are drawn in the *integer
//!    domain* from the same per-pass `stream_seed` streams as the float
//!    path (PR 3), so quantized Bayesian predictions are reproducible and
//!    independent of thread count and pass scheduling.
//!
//! Every quantized op also carries a **float simulation**
//! ([`QuantizedSequential::forward_float_sim`]): the fake-quantized `f32`
//! evaluation of exactly the same graph (same calibrated formats, same
//! quantized multipliers). Wherever `f32` arithmetic is exact — all 8-bit
//! formats on the models in this workspace — the simulation reproduces the
//! integer path bit for bit; the deterministic parity sweep in
//! `tests/quantized_inference.rs` pins the two paths to within one
//! quantization step end to end for every searched format.

use crate::calib::{
    affine_float, avg_pool_float, conv_float, dense_float, global_avg_pool_float, max_pool_float,
    CalibratedNetwork, GraphCalibration, RecordCursor,
};
use crate::error::QuantError;
use crate::fixed::FixedPointFormat;
use crate::params::QuantParams;
use crate::qtensor::{QuantData, QuantizedTensor};
use bnn_models::MultiExitNetwork;
use bnn_nn::layer::Mode;
use bnn_nn::lowering::LayerLowering;
use bnn_tensor::int::{im2col_i16, im2col_i8, matmul_i16, matmul_i8, requantize};
use bnn_tensor::linalg::ConvGeometry;
use bnn_tensor::ops::softmax;
use bnn_tensor::rng::{stream_seed, Rng, SplitMix64, Xoshiro256StarStar};
use bnn_tensor::Tensor;

/// Fractional bits of the fixed-point multipliers used where a scale is not
/// itself a power of two (batch-norm affines, the MC-dropout `1/keep`
/// factor). 12 bits keep the multiplier error two orders of magnitude below
/// even the 16-bit activation step.
pub(crate) const MUL_FRAC: u32 = 12;

/// Rounded division with ties away from zero (`d > 0`): the average-pooling
/// divisor of the integer path (shared with the compiled plans — the two
/// executors must round identically or the bit-exactness contract breaks).
pub(crate) fn div_round(n: i64, d: i64) -> i64 {
    if n >= 0 {
        (2 * n + d) / (2 * d)
    } else {
        -((-2 * n + d) / (2 * d))
    }
}

/// A quantized convolution: weights `[out_c, in_c*k*k]` as codes, bias at
/// the accumulator scale, output requantized by an exact bit-shift.
#[derive(Debug, Clone)]
struct QConv {
    weight: QuantData,
    /// Dequantized weights `[out_c, in_c*k*k]` for the float simulation.
    weight_float: Tensor,
    w_frac: u32,
    /// Bias codes at scale `2^-(w_frac + in_frac)` (the accumulator scale).
    bias: Vec<i64>,
    bias_float: Vec<f32>,
    out_c: usize,
    in_c: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    in_params: QuantParams,
    out: QuantParams,
}

/// A quantized dense layer: weights `[in, out]` as codes.
#[derive(Debug, Clone)]
struct QDense {
    weight: QuantData,
    weight_float: Tensor,
    w_frac: u32,
    bias: Vec<i64>,
    bias_float: Vec<f32>,
    in_f: usize,
    out_f: usize,
    in_params: QuantParams,
    out: QuantParams,
}

/// A folded batch-norm affine with 12-fractional-bit integer multipliers.
#[derive(Debug, Clone)]
struct QAffine {
    /// Per-channel multiplier codes, `round(scale * eps_in/eps_out * 2^12)`.
    m: Vec<i64>,
    /// Per-channel offset codes, `round(shift / eps_out * 2^12)`.
    b: Vec<i64>,
    /// The effective (quantized) multiplier in value space, for the sim.
    m_float: Vec<f32>,
    b_float: Vec<f32>,
    in_params: QuantParams,
    out: QuantParams,
}

/// One op of a quantized graph.
#[derive(Debug, Clone)]
enum QOp {
    Conv(Box<QConv>),
    Dense(Box<QDense>),
    Relu,
    MaxPool {
        kernel: usize,
        stride: usize,
    },
    AvgPool {
        kernel: usize,
        stride: usize,
        params: QuantParams,
    },
    GlobalAvgPool {
        params: QuantParams,
    },
    Flatten,
    Affine(Box<QAffine>),
    McDropout {
        rate: f64,
        /// `round((1/keep) * 2^12)` — the quantized inverted-dropout scale.
        scale_q: i64,
        params: QuantParams,
        rng_int: Xoshiro256StarStar,
        rng_sim: Xoshiro256StarStar,
    },
    Identity,
    Residual {
        main: QuantizedSequential,
        /// Empty op list means an identity skip connection.
        shortcut: QuantizedSequential,
        out: QuantParams,
    },
}

/// Splits `[out_c, batch*plane]` row-major data into `[batch, out_c, plane]`
/// order (the layout reorder after an im2col matmul), mapping values with
/// `f` along the way.
pub(crate) fn reorder_to_nchw<T: Copy, U, F: Fn(usize, T) -> U>(
    src: &[T],
    out_c: usize,
    batch: usize,
    plane: usize,
    init: U,
    f: F,
) -> Vec<U>
where
    U: Clone,
{
    let mut out = vec![init; batch * out_c * plane];
    if plane == 0 || batch == 0 {
        return out;
    }
    for (co, src_chan) in src.chunks_exact(batch * plane).enumerate() {
        for (b, src_row) in src_chan.chunks_exact(plane).enumerate() {
            let start = (b * out_c + co) * plane;
            for (dst, &s) in out[start..start + plane].iter_mut().zip(src_row) {
                *dst = f(co, s);
            }
        }
    }
    out
}

/// Integer matrix product dispatching on the storage width; the result is
/// widened to `i64` for uniform bias/requantize handling.
fn gemm_codes(
    a: &QuantData,
    b: &QuantData,
    m: usize,
    k: usize,
    n: usize,
) -> Result<Vec<i64>, QuantError> {
    match (a, b) {
        (QuantData::I8(a), QuantData::I8(b)) => Ok(matmul_i8(a, b, m, k, n)?
            .into_iter()
            .map(i64::from)
            .collect()),
        (QuantData::I16(a), QuantData::I16(b)) => Ok(matmul_i16(a, b, m, k, n)?),
        _ => Err(QuantError::Internal(
            "mixed i8/i16 operands in one integer product".into(),
        )),
    }
}

/// Integer im2col dispatching on the storage width.
fn im2col_codes(
    data: &QuantData,
    batch: usize,
    channels: usize,
    geom: &ConvGeometry,
) -> Result<(QuantData, usize, usize), QuantError> {
    match data {
        QuantData::I8(v) => {
            let (cols, rows, n) = im2col_i8(v, batch, channels, geom)?;
            Ok((QuantData::I8(cols), rows, n))
        }
        QuantData::I16(v) => {
            let (cols, rows, n) = im2col_i16(v, batch, channels, geom)?;
            Ok((QuantData::I16(cols), rows, n))
        }
    }
}

/// Draws the filter-wise / element-wise Bernoulli keep-pattern of one
/// MC-dropout pass — the same draw order as the float `McDropout` layer, so
/// identical streams produce identical masks in every path.
fn draw_keep_mask(rng: &mut Xoshiro256StarStar, dims: &[usize], keep: f64) -> Vec<bool> {
    if dims.len() == 4 {
        let (n, c) = (dims[0], dims[1]);
        (0..n * c).map(|_| rng.bernoulli(keep)).collect()
    } else {
        let total: usize = dims.iter().product();
        (0..total).map(|_| rng.bernoulli(keep)).collect()
    }
}

/// Expands a keep-pattern to a per-element iterator index: for NCHW tensors
/// the pattern is per `(batch, channel)`; otherwise per element.
fn mask_index(dims: &[usize], flat: usize) -> usize {
    if dims.len() == 4 {
        let plane = dims[2] * dims[3];
        flat / plane
    } else {
        flat
    }
}

/// An ordered stack of quantized ops with fixed input/output formats — the
/// integer lowering of a [`bnn_nn::Sequential`] (or of one path of a
/// residual block).
///
/// Build one with [`QuantizedSequential::lower`], then run
/// [`QuantizedSequential::forward_int`] on quantized inputs or
/// [`QuantizedSequential::forward_float_sim`] for the bit-compatible
/// fake-quantized float evaluation of the same graph.
#[derive(Debug, Clone)]
pub struct QuantizedSequential {
    ops: Vec<QOp>,
    in_params: QuantParams,
    out_params: QuantParams,
    total_bits: u32,
}

impl QuantizedSequential {
    /// Lowers a trained layer to a calibrated integer graph.
    ///
    /// `calib` is the representative float batch used to calibrate every
    /// activation edge (it must have the layer's input shape). The format
    /// supplies the total bit width `W`; integer/fractional splits are
    /// calibrated per tensor.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Unsupported`] for layers without an inference
    /// lowering or formats wider than 16 bits, [`QuantError::NonFinite`] if
    /// calibration meets NaN/infinite activations, or propagated shape
    /// errors.
    pub fn lower(
        layer: &dyn bnn_nn::Layer,
        format: FixedPointFormat,
        calib: &Tensor,
    ) -> Result<Self, QuantError> {
        let lowering = layer.lowering()?;
        let total_bits = QuantParams::new(format)?.format().total_bits();
        let (record, _out_act) = GraphCalibration::collect(&lowering, calib)?;
        let in_params = record.input.params(total_bits)?;
        build_sequence(&lowering, &record, total_bits, in_params)
    }

    /// The input activation format.
    pub fn in_params(&self) -> QuantParams {
        self.in_params
    }

    /// The output activation format.
    pub fn out_params(&self) -> QuantParams {
        self.out_params
    }

    /// Number of lowered ops (residual paths count as one op).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Total bit width of every tensor in this graph.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Quantizes a float input onto the graph's input format.
    pub fn quantize_input(&self, input: &Tensor) -> QuantizedTensor {
        QuantizedTensor::quantize(input, self.in_params)
    }

    /// Runs the integer path. In [`Mode::Eval`] MC-dropout ops are the
    /// identity; in [`Mode::McSample`] (or [`Mode::Train`]) they draw a
    /// fresh mask from their current stream.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Internal`] if the input format or shape does
    /// not match the graph.
    pub fn forward_int(
        &mut self,
        input: &QuantizedTensor,
        mode: Mode,
    ) -> Result<QuantizedTensor, QuantError> {
        if input.params() != self.in_params {
            return Err(QuantError::Internal(format!(
                "input format {} does not match graph input format {}",
                input.params().format(),
                self.in_params.format()
            )));
        }
        // One clone at the graph boundary; inside, ops consume their input
        // so shape-only ops (flatten, identity, skipped dropout) move the
        // code buffer instead of cloning it.
        run_ops_int(&mut self.ops, input.clone(), mode)
    }

    /// Runs the fake-quantized float simulation of the same graph: the
    /// input is snapped to the input format, every op evaluates in `f32` on
    /// dequantized weights/multipliers, and every scale-changing op
    /// requantizes its output to the calibrated format. See the
    /// [module documentation](self) for how closely this tracks
    /// [`QuantizedSequential::forward_int`].
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward_float_sim(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, QuantError> {
        let in_params = self.in_params;
        let mut current = input.map(|v| in_params.fake_quantize(v));
        for op in &mut self.ops {
            current = forward_op_sim(op, &current, mode)?;
        }
        Ok(current)
    }

    /// Reseeds every MC-dropout stream (both the integer and the simulation
    /// RNG) from `streams`, in op order — the same contract as
    /// [`bnn_nn::Layer::reseed_mc_streams`].
    pub fn reseed_mc(&mut self, streams: &mut SplitMix64) {
        for op in &mut self.ops {
            match op {
                QOp::McDropout {
                    rng_int, rng_sim, ..
                } => {
                    let seed = streams.next_u64();
                    *rng_int = Xoshiro256StarStar::seed_from_u64(seed);
                    *rng_sim = Xoshiro256StarStar::seed_from_u64(seed);
                }
                QOp::Residual { main, shortcut, .. } => {
                    main.reseed_mc(streams);
                    shortcut.reseed_mc(streams);
                }
                _ => {}
            }
        }
    }

    /// An empty pass-through graph (the identity shortcut of a residual
    /// block).
    fn identity(params: QuantParams, total_bits: u32) -> Self {
        QuantizedSequential {
            ops: Vec::new(),
            in_params: params,
            out_params: params,
            total_bits,
        }
    }
}

/// Builds the quantized graph of one lowering against its calibration
/// record (the cursor-driven counterpart of the old per-format calibration
/// forward — no float inference happens here).
pub(crate) fn build_sequence(
    lowering: &LayerLowering,
    record: &GraphCalibration,
    total_bits: u32,
    in_params: QuantParams,
) -> Result<QuantizedSequential, QuantError> {
    let mut ops = Vec::new();
    let mut params = in_params;
    let mut cursor = RecordCursor::new(&record.ops);
    build_into(lowering, total_bits, &mut ops, &mut params, &mut cursor)?;
    cursor.finish()?;
    Ok(QuantizedSequential {
        ops,
        in_params,
        out_params: params,
        total_bits,
    })
}

/// Quantized weight/bias data derived for one format from a lowered weight
/// layer and its recorded ranges.
pub(crate) struct QuantizedWeights {
    pub(crate) codes: QuantData,
    pub(crate) weight_float: Tensor,
    pub(crate) w_frac: u32,
    pub(crate) bias: Vec<i64>,
    pub(crate) bias_float: Vec<f32>,
    /// Accumulator-to-output requantization shift.
    pub(crate) shift: i32,
}

/// Quantizes a weight tensor and bias for one format: weight codes on the
/// recorded weight range's grid, bias at the accumulator scale, and the
/// output requantization shift.
pub(crate) fn quantize_weights(
    weight: &Tensor,
    weight_2d: Option<&[usize]>,
    bias: &Tensor,
    w_range: crate::calib::ValueRange,
    total_bits: u32,
    in_params: QuantParams,
    out: QuantParams,
) -> Result<QuantizedWeights, QuantError> {
    let w_params = w_range.params(total_bits)?;
    let w_codes = QuantizedTensor::quantize(weight, w_params);
    let weight_float = match weight_2d {
        Some(dims) => w_codes.dequantize().reshape(dims)?,
        None => w_codes.dequantize(),
    };
    let acc_frac = w_params.fractional_bits() + in_params.fractional_bits();
    let acc_scale = 2f64.powi(acc_frac as i32);
    let bias_codes: Vec<i64> = bias
        .as_slice()
        .iter()
        .map(|&b| (b as f64 * acc_scale).round() as i64)
        .collect();
    let bias_float: Vec<f32> = bias_codes
        .iter()
        .map(|&c| (c as f64 / acc_scale) as f32)
        .collect();
    Ok(QuantizedWeights {
        codes: w_codes.data().clone(),
        weight_float,
        w_frac: w_params.fractional_bits(),
        bias: bias_codes,
        bias_float,
        shift: acc_frac as i32 - out.fractional_bits() as i32,
    })
}

/// The quantized per-channel affine multipliers of a folded batch-norm for
/// one format (12-fractional-bit fixed point against the chosen scales).
pub(crate) struct QuantizedAffine {
    pub(crate) m: Vec<i64>,
    pub(crate) b: Vec<i64>,
    pub(crate) m_float: Vec<f32>,
    pub(crate) b_float: Vec<f32>,
}

/// Quantizes affine `scale * x + shift` multipliers against the in/out
/// formats.
pub(crate) fn quantize_affine(
    scale: &[f32],
    shift: &[f32],
    in_params: QuantParams,
    out: QuantParams,
) -> QuantizedAffine {
    let eps_in = in_params.scale() as f64;
    let eps_out = out.scale() as f64;
    let mul = 2f64.powi(MUL_FRAC as i32);
    let m: Vec<i64> = scale
        .iter()
        .map(|&s| (s as f64 * eps_in / eps_out * mul).round() as i64)
        .collect();
    let b: Vec<i64> = shift
        .iter()
        .map(|&s| (s as f64 / eps_out * mul).round() as i64)
        .collect();
    let m_float: Vec<f32> = m
        .iter()
        .map(|&c| (c as f64 / mul * eps_out / eps_in) as f32)
        .collect();
    let b_float: Vec<f32> = b
        .iter()
        .map(|&c| (c as f64 / mul * eps_out) as f32)
        .collect();
    QuantizedAffine {
        m,
        b,
        m_float,
        b_float,
    }
}

/// The quantized inverted-dropout scale, `round((1/keep) * 2^12)`.
pub(crate) fn dropout_scale_q(rate: f64) -> i64 {
    (1.0 / (1.0 - rate) * 2f64.powi(MUL_FRAC as i32)).round() as i64
}

/// Appends the quantized op(s) of `lowering` to `ops`, consuming calibration
/// records in walk order and advancing the running activation format.
fn build_into(
    lowering: &LayerLowering,
    total_bits: u32,
    ops: &mut Vec<QOp>,
    params: &mut QuantParams,
    cursor: &mut RecordCursor<'_>,
) -> Result<(), QuantError> {
    match lowering {
        LayerLowering::Sequence(children) => {
            for child in children {
                build_into(child, total_bits, ops, params, cursor)?;
            }
        }
        LayerLowering::Conv2d {
            weight,
            bias,
            stride,
            padding,
        } => {
            let record = cursor.take(lowering.name())?;
            let dims = weight.dims();
            let (out_c, in_c, kernel) = (dims[0], dims[1], dims[2]);
            let out = record
                .out
                .expect("conv records an output range")
                .params(total_bits)?;
            let w = quantize_weights(
                weight,
                Some(&[out_c, in_c * kernel * kernel]),
                bias,
                record.weight.expect("conv records a weight range"),
                total_bits,
                *params,
                out,
            )?;
            ops.push(QOp::Conv(Box::new(QConv {
                weight: w.codes,
                weight_float: w.weight_float,
                w_frac: w.w_frac,
                bias: w.bias,
                bias_float: w.bias_float,
                out_c,
                in_c,
                kernel,
                stride: *stride,
                padding: *padding,
                in_params: *params,
                out,
            })));
            *params = out;
        }
        LayerLowering::Dense { weight, bias } => {
            let record = cursor.take(lowering.name())?;
            let dims = weight.dims();
            let (in_f, out_f) = (dims[0], dims[1]);
            let out = record
                .out
                .expect("dense records an output range")
                .params(total_bits)?;
            let w = quantize_weights(
                weight,
                None,
                bias,
                record.weight.expect("dense records a weight range"),
                total_bits,
                *params,
                out,
            )?;
            ops.push(QOp::Dense(Box::new(QDense {
                weight: w.codes,
                weight_float: w.weight_float,
                w_frac: w.w_frac,
                bias: w.bias,
                bias_float: w.bias_float,
                in_f,
                out_f,
                in_params: *params,
                out,
            })));
            *params = out;
        }
        LayerLowering::Relu => {
            cursor.take(lowering.name())?;
            ops.push(QOp::Relu);
        }
        LayerLowering::MaxPool2d { kernel, stride } => {
            cursor.take(lowering.name())?;
            ops.push(QOp::MaxPool {
                kernel: *kernel,
                stride: *stride,
            });
        }
        LayerLowering::AvgPool2d { kernel, stride } => {
            cursor.take(lowering.name())?;
            ops.push(QOp::AvgPool {
                kernel: *kernel,
                stride: *stride,
                params: *params,
            });
        }
        LayerLowering::GlobalAvgPool2d => {
            cursor.take(lowering.name())?;
            ops.push(QOp::GlobalAvgPool { params: *params });
        }
        LayerLowering::Flatten => {
            cursor.take(lowering.name())?;
            ops.push(QOp::Flatten);
        }
        LayerLowering::Affine { scale, shift } => {
            let record = cursor.take(lowering.name())?;
            let out = record
                .out
                .expect("affine records an output range")
                .params(total_bits)?;
            let aff = quantize_affine(scale, shift, *params, out);
            ops.push(QOp::Affine(Box::new(QAffine {
                m: aff.m,
                b: aff.b,
                m_float: aff.m_float,
                b_float: aff.b_float,
                in_params: *params,
                out,
            })));
            *params = out;
        }
        LayerLowering::McDropout { rate } => {
            cursor.take(lowering.name())?;
            ops.push(QOp::McDropout {
                rate: *rate,
                scale_q: dropout_scale_q(*rate),
                params: *params,
                rng_int: Xoshiro256StarStar::seed_from_u64(0),
                rng_sim: Xoshiro256StarStar::seed_from_u64(0),
            });
        }
        LayerLowering::Identity => {
            cursor.take(lowering.name())?;
            ops.push(QOp::Identity);
        }
        LayerLowering::Residual { main, shortcut } => {
            let in_params = *params;
            let mut main_ops = Vec::new();
            let mut main_params = in_params;
            for child in main {
                build_into(child, total_bits, &mut main_ops, &mut main_params, cursor)?;
            }
            let main_seq = QuantizedSequential {
                ops: main_ops,
                in_params,
                out_params: main_params,
                total_bits,
            };
            let short_seq = if shortcut.is_empty() {
                QuantizedSequential::identity(in_params, total_bits)
            } else {
                let mut short_ops = Vec::new();
                let mut short_params = in_params;
                for child in shortcut {
                    build_into(child, total_bits, &mut short_ops, &mut short_params, cursor)?;
                }
                QuantizedSequential {
                    ops: short_ops,
                    in_params,
                    out_params: short_params,
                    total_bits,
                }
            };
            let record = cursor.take(lowering.name())?;
            let out = record
                .out
                .expect("residual records an output range")
                .params(total_bits)?;
            ops.push(QOp::Residual {
                main: main_seq,
                shortcut: short_seq,
                out,
            });
            *params = out;
        }
    }
    Ok(())
}

/// Integer square-window pooling: max, or sum with round-half-away-from-zero
/// division (the result of either stays within the input format's range).
fn pool_int(
    input: &QuantizedTensor,
    kernel: usize,
    stride: usize,
    is_max: bool,
) -> Result<QuantizedTensor, QuantError> {
    let (n, c, h, w) = match input.dims() {
        [n, c, h, w] => (*n, *c, *h, *w),
        other => {
            return Err(QuantError::Internal(format!(
                "pool expects NCHW input, got {other:?}"
            )))
        }
    };
    let geom = ConvGeometry::square(h, w, kernel, stride, 0);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let params = input.params();
    let data = input.data();
    let mut codes = vec![0i64; n * c * oh * ow];
    for b in 0..n {
        for ch in 0..c {
            for y in 0..oh {
                for x in 0..ow {
                    let mut best = i64::MIN;
                    let mut acc = 0i64;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = y * stride + ky;
                            let ix = x * stride + kx;
                            if iy < h && ix < w {
                                let v = data.code(((b * c + ch) * h + iy) * w + ix);
                                best = best.max(v);
                                acc += v;
                            }
                        }
                    }
                    codes[((b * c + ch) * oh + y) * ow + x] = if is_max {
                        best
                    } else {
                        div_round(acc, (kernel * kernel) as i64)
                    };
                }
            }
        }
    }
    QuantizedTensor::from_parts(
        QuantData::from_codes(params.width(), codes.into_iter()),
        vec![n, c, oh, ow],
        params,
    )
}

/// Runs an op list on the integer path, threading ownership of the
/// activation through the chain.
fn run_ops_int(
    ops: &mut [QOp],
    input: QuantizedTensor,
    mode: Mode,
) -> Result<QuantizedTensor, QuantError> {
    let mut current = input;
    for op in ops {
        current = forward_op_int(op, current, mode)?;
    }
    Ok(current)
}

/// Executes one op on the integer path. The op consumes its input: shape-only
/// ops (flatten, identity, non-sampling dropout) move the code buffer, and
/// element-wise ops mutate it in place — the per-op `clone()`s of the old
/// by-reference chain are gone.
fn forward_op_int(
    op: &mut QOp,
    input: QuantizedTensor,
    mode: Mode,
) -> Result<QuantizedTensor, QuantError> {
    match op {
        QOp::Conv(conv) => {
            let (batch, c, h, w) = match input.dims() {
                [n, c, h, w] => (*n, *c, *h, *w),
                other => {
                    return Err(QuantError::Internal(format!(
                        "conv expects NCHW input, got {other:?}"
                    )))
                }
            };
            if c != conv.in_c || input.params() != conv.in_params {
                return Err(QuantError::Internal(
                    "conv input channels/format mismatch".into(),
                ));
            }
            let geom = ConvGeometry::square(h, w, conv.kernel, conv.stride, conv.padding);
            let (cols, rows, n_cols) = im2col_codes(input.data(), batch, c, &geom)?;
            let acc = gemm_codes(&conv.weight, &cols, conv.out_c, rows, n_cols)?;
            let out = conv.out;
            let shift = (conv.w_frac + conv.in_params.fractional_bits()) as i32
                - out.fractional_bits() as i32;
            let plane = geom.out_h() * geom.out_w();
            let codes = reorder_to_nchw(&acc, conv.out_c, batch, plane, 0i64, |co, a| {
                requantize(a + conv.bias[co], shift, out.qmin(), out.qmax())
            });
            QuantizedTensor::from_parts(
                QuantData::from_codes(out.width(), codes.into_iter()),
                vec![batch, conv.out_c, geom.out_h(), geom.out_w()],
                out,
            )
        }
        QOp::Dense(dense) => {
            let (batch, feats) = match input.dims() {
                [b, f] => (*b, *f),
                other => {
                    return Err(QuantError::Internal(format!(
                        "dense expects [batch, features] input, got {other:?}"
                    )))
                }
            };
            if feats != dense.in_f || input.params() != dense.in_params {
                return Err(QuantError::Internal(
                    "dense input features/format mismatch".into(),
                ));
            }
            let acc = gemm_codes(input.data(), &dense.weight, batch, dense.in_f, dense.out_f)?;
            let out = dense.out;
            let shift = (dense.w_frac + dense.in_params.fractional_bits()) as i32
                - out.fractional_bits() as i32;
            let codes = acc.chunks_exact(dense.out_f).flat_map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(o, &a)| requantize(a + dense.bias[o], shift, out.qmin(), out.qmax()))
            });
            QuantizedTensor::from_parts(
                QuantData::from_codes(out.width(), codes),
                vec![batch, dense.out_f],
                out,
            )
        }
        QOp::Relu => {
            // Stay at storage width: max(0) cannot leave the code range, so
            // no widening or re-saturation is needed — and the clamp runs in
            // place on the owned buffer.
            let (mut data, dims, params) = input.into_parts();
            match &mut data {
                QuantData::I8(v) => v.iter_mut().for_each(|c| *c = (*c).max(0)),
                QuantData::I16(v) => v.iter_mut().for_each(|c| *c = (*c).max(0)),
            }
            QuantizedTensor::from_parts(data, dims, params)
        }
        QOp::MaxPool { kernel, stride } => pool_int(&input, *kernel, *stride, true),
        QOp::AvgPool { kernel, stride, .. } => pool_int(&input, *kernel, *stride, false),
        QOp::GlobalAvgPool { .. } => {
            let (n, c, h, w) = match input.dims() {
                [n, c, h, w] => (*n, *c, *h, *w),
                other => {
                    return Err(QuantError::Internal(format!(
                        "global avg pool expects NCHW input, got {other:?}"
                    )))
                }
            };
            let plane = (h * w) as i64;
            let params = input.params();
            let data = input.data();
            let mut codes = vec![0i64; n * c];
            for b in 0..n {
                for ch in 0..c {
                    let start = (b * c + ch) * h * w;
                    let acc: i64 = (0..h * w).map(|i| data.code(start + i)).sum();
                    codes[b * c + ch] = div_round(acc, plane);
                }
            }
            QuantizedTensor::from_parts(
                QuantData::from_codes(params.width(), codes.into_iter()),
                vec![n, c],
                params,
            )
        }
        QOp::Flatten => {
            let batch = input.dims()[0];
            let rest: usize = input.dims()[1..].iter().product();
            let (data, _dims, params) = input.into_parts();
            QuantizedTensor::from_parts(data, vec![batch, rest], params)
        }
        QOp::Affine(aff) => {
            let (n, c, h, w) = match input.dims() {
                [n, c, h, w] => (*n, *c, *h, *w),
                other => {
                    return Err(QuantError::Internal(format!(
                        "affine expects NCHW input, got {other:?}"
                    )))
                }
            };
            if input.params() != aff.in_params || c != aff.m.len() {
                return Err(QuantError::Internal("affine input mismatch".into()));
            }
            let out = aff.out;
            let plane = h * w;
            let data = input.data();
            let mut codes = vec![0i64; n * c * plane];
            for b in 0..n {
                for ch in 0..c {
                    let start = (b * c + ch) * plane;
                    for i in 0..plane {
                        let x = data.code(start + i);
                        let acc = x * aff.m[ch] + aff.b[ch];
                        codes[start + i] = requantize(acc, MUL_FRAC as i32, out.qmin(), out.qmax());
                    }
                }
            }
            let new_data = QuantData::from_codes(out.width(), codes.into_iter());
            let (_, dims, _) = input.into_parts();
            QuantizedTensor::from_parts(new_data, dims, out)
        }
        QOp::McDropout {
            rate,
            scale_q,
            rng_int,
            ..
        } => {
            let params = input.params();
            if !mode.samples_mc_dropout() || *rate == 0.0 {
                // Keep stream positions aligned with the sampling path: a
                // non-sampling pass draws nothing, exactly like the float
                // McDropout layer — and the input moves through untouched.
                return Ok(input);
            }
            let keep = 1.0 - *rate;
            let pattern = draw_keep_mask(rng_int, input.dims(), keep);
            let data = input.data();
            let dims = input.dims();
            let codes = (0..data.len()).map(|i| {
                if pattern[mask_index(dims, i)] {
                    requantize(
                        data.code(i) * *scale_q,
                        MUL_FRAC as i32,
                        params.qmin(),
                        params.qmax(),
                    )
                } else {
                    0
                }
            });
            let new_data = QuantData::from_codes(params.width(), codes);
            let (_, dims, _) = input.into_parts();
            QuantizedTensor::from_parts(new_data, dims, params)
        }
        QOp::Identity => Ok(input),
        QOp::Residual {
            main,
            shortcut,
            out,
        } => {
            let main_out = run_ops_int(&mut main.ops, input.clone(), mode)?;
            let short_out = if shortcut.ops.is_empty() {
                input
            } else {
                run_ops_int(&mut shortcut.ops, input, mode)?
            };
            if main_out.dims() != short_out.dims() {
                return Err(QuantError::Internal(format!(
                    "residual paths produced {:?} vs {:?}",
                    main_out.dims(),
                    short_out.dims()
                )));
            }
            let out_p = *out;
            let m_shift =
                main_out.params().fractional_bits() as i32 - out_p.fractional_bits() as i32;
            let s_shift =
                short_out.params().fractional_bits() as i32 - out_p.fractional_bits() as i32;
            let m_data = main_out.data();
            let s_data = short_out.data();
            let codes = (0..m_data.len()).map(|i| {
                let a = requantize(m_data.code(i), m_shift, out_p.qmin(), out_p.qmax());
                let b = requantize(s_data.code(i), s_shift, out_p.qmin(), out_p.qmax());
                (a + b).max(0).min(out_p.qmax())
            });
            let new_data = QuantData::from_codes(out_p.width(), codes);
            let (_, dims, _) = main_out.into_parts();
            QuantizedTensor::from_parts(new_data, dims, out_p)
        }
    }
}

/// Executes one op on the fake-quantized float simulation.
fn forward_op_sim(op: &mut QOp, input: &Tensor, mode: Mode) -> Result<Tensor, QuantError> {
    match op {
        QOp::Conv(conv) => {
            let y = conv_float(
                input,
                &conv.weight_float,
                &conv.bias_float,
                conv.kernel,
                conv.stride,
                conv.padding,
            )?;
            let out = conv.out;
            Ok(y.map(|v| out.fake_quantize(v)))
        }
        QOp::Dense(dense) => {
            let y = dense_float(input, &dense.weight_float, &dense.bias_float)?;
            let out = dense.out;
            Ok(y.map(|v| out.fake_quantize(v)))
        }
        QOp::Relu => Ok(input.map(|v| v.max(0.0))),
        QOp::MaxPool { kernel, stride } => max_pool_float(input, *kernel, *stride),
        QOp::AvgPool {
            kernel,
            stride,
            params,
        } => avg_pool_float(input, *kernel, *stride, *params),
        QOp::GlobalAvgPool { params } => global_avg_pool_float(input, *params),
        QOp::Flatten => {
            let batch = input.dims()[0];
            let rest: usize = input.dims()[1..].iter().product();
            Ok(input.reshape(&[batch, rest])?)
        }
        QOp::Affine(aff) => {
            let y = affine_float(input, &aff.m_float, &aff.b_float, aff.m.len())?;
            let out = aff.out;
            Ok(y.map(|v| out.fake_quantize(v)))
        }
        QOp::McDropout {
            rate,
            scale_q,
            params,
            rng_sim,
            ..
        } => {
            if !mode.samples_mc_dropout() || *rate == 0.0 {
                return Ok(input.clone());
            }
            let keep = 1.0 - *rate;
            let pattern = draw_keep_mask(rng_sim, input.dims(), keep);
            let dims = input.dims().to_vec();
            let scale = (*scale_q as f64 / 2f64.powi(MUL_FRAC as i32)) as f32;
            let p = *params;
            let mut out = input.clone();
            for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
                // Kept units use the quantized 1/keep multiplier and land
                // back on the activation grid (saturating), mirroring the
                // integer datapath.
                *v = if pattern[mask_index(&dims, i)] {
                    p.fake_quantize(*v * scale)
                } else {
                    0.0
                };
            }
            Ok(out)
        }
        QOp::Identity => Ok(input.clone()),
        QOp::Residual {
            main,
            shortcut,
            out,
        } => {
            let main_out = main.forward_float_sim(input, mode)?;
            let short_out = if shortcut.ops.is_empty() {
                input.clone()
            } else {
                shortcut.forward_float_sim(input, mode)?
            };
            let out_p = *out;
            let sum = main_out
                .map(|v| out_p.fake_quantize(v))
                .add(&short_out.map(|v| out_p.fake_quantize(v)))?;
            Ok(sum.map(|v| out_p.fake_quantize(v.max(0.0))))
        }
    }
}

/// The integer lowering of a trained [`MultiExitNetwork`]: quantized
/// backbone blocks with quantized exit branches attached at block
/// boundaries, plus the seeded Monte-Carlo prediction loop Phase 3 scores
/// bitwidth candidates with.
///
/// # Example
///
/// ```
/// use bnn_models::{zoo, ModelConfig};
/// use bnn_quant::{FixedPointFormat, QuantizedMultiExitNetwork};
/// use bnn_tensor::rng::Xoshiro256StarStar;
/// use bnn_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = zoo::lenet5(&ModelConfig::mnist().with_resolution(12, 12).with_width_divisor(4))
///     .with_exits_after_every_block()?
///     .with_exit_mcd(0.25)?;
/// let mut trained = spec.build(7)?; // (train it for real use)
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let calib = Tensor::randn(&[4, 1, 12, 12], &mut rng);
/// let mut qnet = QuantizedMultiExitNetwork::lower(
///     &trained,
///     FixedPointFormat::new(8, 3)?,
///     &calib,
/// )?;
/// let probs = qnet.predict_probs(&calib, 4, 2023)?; // integer MC inference
/// assert_eq!(probs.dims(), &[4, 10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedMultiExitNetwork {
    blocks: Vec<QuantizedSequential>,
    exits: Vec<(usize, QuantizedSequential)>,
    classes: usize,
    format: FixedPointFormat,
}

impl QuantizedMultiExitNetwork {
    /// Lowers a trained network to the integer path, calibrating every
    /// activation edge on the representative float batch `calib` (which
    /// must have the network's input shape).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Unsupported`] for layers without an inference
    /// lowering or formats wider than 16 bits, [`QuantError::NonFinite`]
    /// for NaN/infinite weights or calibration activations, or propagated
    /// shape errors.
    pub fn lower(
        network: &MultiExitNetwork,
        format: FixedPointFormat,
        calib: &Tensor,
    ) -> Result<Self, QuantError> {
        CalibratedNetwork::calibrate(network, calib)?.quantize(format)
    }

    /// Derives the integer network for one format from a shared calibration
    /// record — see [`CalibratedNetwork::quantize`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Unsupported`] for formats wider than 16 bits,
    /// or [`QuantError::Internal`] on lowering/record skew.
    pub(crate) fn from_calibrated(
        calibrated: &CalibratedNetwork,
        format: FixedPointFormat,
    ) -> Result<Self, QuantError> {
        let total_bits = QuantParams::new(format)?.format().total_bits();
        let mut params = calibrated.input.params(total_bits)?;
        let mut blocks = Vec::new();
        let mut block_params = Vec::new();
        for (lowering, record) in &calibrated.blocks {
            let seq = build_sequence(lowering, record, total_bits, params)?;
            params = seq.out_params();
            blocks.push(seq);
            block_params.push(params);
        }
        let mut exits = Vec::new();
        for (after_block, lowering, record) in &calibrated.exits {
            let seq = build_sequence(lowering, record, total_bits, block_params[*after_block])?;
            exits.push((*after_block, seq));
        }
        Ok(QuantizedMultiExitNetwork {
            blocks,
            exits,
            classes: calibrated.classes,
            format,
        })
    }

    /// The format the network was lowered with (total bit width; per-tensor
    /// integer/fractional splits are calibrated).
    pub fn format(&self) -> FixedPointFormat {
        self.format
    }

    /// Number of exits.
    pub fn num_exits(&self) -> usize {
        self.exits.len()
    }

    /// Number of predicted classes.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// The calibrated output format of every exit branch, in attachment
    /// order (one quantization step of these formats bounds the per-logit
    /// resolution of the integer path).
    pub fn exit_out_params(&self) -> Vec<QuantParams> {
        self.exits.iter().map(|(_, e)| e.out_params()).collect()
    }

    /// Reseeds every MC-dropout stream from `master_seed`, walking blocks
    /// then exits in order — the same stream assignment as
    /// [`bnn_nn::Network::reseed_mc_streams`] on the float network.
    pub fn reseed_mc_streams(&mut self, master_seed: u64) {
        let mut streams = SplitMix64::new(master_seed);
        for block in &mut self.blocks {
            block.reseed_mc(&mut streams);
        }
        for (_, exit) in &mut self.exits {
            exit.reseed_mc(&mut streams);
        }
    }

    /// Runs the integer backbone deterministically ([`Mode::Eval`]) and
    /// returns the quantized activation after every block — the cached
    /// tensors MC passes re-run the exits on (paper Eq. 2).
    ///
    /// # Errors
    ///
    /// Propagates graph-execution errors.
    pub fn forward_backbone_int(
        &mut self,
        input: &Tensor,
    ) -> Result<Vec<QuantizedTensor>, QuantError> {
        // Feed each block from the stored activation of its predecessor:
        // one buffer per block boundary, no shadow `current` clone.
        let input_q = self.blocks[0].quantize_input(input);
        let mut acts: Vec<QuantizedTensor> = Vec::with_capacity(self.blocks.len());
        for (i, block) in self.blocks.iter_mut().enumerate() {
            let src = if i == 0 { &input_q } else { &acts[i - 1] };
            let out = block.forward_int(src, Mode::Eval)?;
            acts.push(out);
        }
        Ok(acts)
    }

    /// Runs only the exit branches on cached backbone activations and
    /// returns one dequantized logit tensor per exit (attachment order).
    ///
    /// # Errors
    ///
    /// Propagates graph-execution errors.
    pub fn exits_from_activations_int(
        &mut self,
        activations: &[QuantizedTensor],
        mode: Mode,
    ) -> Result<Vec<Tensor>, QuantError> {
        if activations.len() != self.blocks.len() {
            return Err(QuantError::Internal(format!(
                "expected {} block activations, got {}",
                self.blocks.len(),
                activations.len()
            )));
        }
        let mut outputs = Vec::with_capacity(self.exits.len());
        for (after_block, branch) in &mut self.exits {
            let q = branch.forward_int(&activations[*after_block], mode)?;
            outputs.push(q.dequantize());
        }
        Ok(outputs)
    }

    /// Full integer forward pass: backbone in [`Mode::Eval`], exits in
    /// `mode`. Returns dequantized logits per exit.
    ///
    /// # Errors
    ///
    /// Propagates graph-execution errors.
    pub fn forward_exits_int(
        &mut self,
        input: &Tensor,
        mode: Mode,
    ) -> Result<Vec<Tensor>, QuantError> {
        let acts = self.forward_backbone_int(input)?;
        self.exits_from_activations_int(&acts, mode)
    }

    /// The fake-quantized float simulation of [`Self::forward_exits_int`]:
    /// the same graph evaluated with `f32` kernels (backbone deterministic,
    /// exits in `mode`). See the [module documentation](self).
    ///
    /// # Errors
    ///
    /// Propagates graph-execution errors.
    pub fn forward_exits_float_sim(
        &mut self,
        input: &Tensor,
        mode: Mode,
    ) -> Result<Vec<Tensor>, QuantError> {
        let mut current = input.clone();
        let mut acts = Vec::with_capacity(self.blocks.len());
        for block in &mut self.blocks {
            current = block.forward_float_sim(&current, Mode::Eval)?;
            acts.push(current.clone());
        }
        let mut outputs = Vec::with_capacity(self.exits.len());
        for (after_block, branch) in &mut self.exits {
            outputs.push(branch.forward_float_sim(&acts[*after_block], mode)?);
        }
        Ok(outputs)
    }

    /// Seeded Monte-Carlo prediction on the integer path, mirroring the
    /// float sampler's accounting: the backbone runs once, each pass
    /// reseeds every mask stream from `stream_seed(seed, pass)` and re-runs
    /// the exits in [`Mode::McSample`], one sample per exit per pass, and
    /// the first `n_samples` per-sample softmax tensors are averaged.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Internal`] for a network without exits, or
    /// propagates execution errors.
    pub fn predict_probs(
        &mut self,
        inputs: &Tensor,
        n_samples: usize,
        seed: u64,
    ) -> Result<Tensor, QuantError> {
        let n_exits = self.exits.len();
        if n_exits == 0 {
            return Err(QuantError::Internal("network has no exits".into()));
        }
        let passes = n_samples.div_ceil(n_exits).max(1);
        let acts = self.forward_backbone_int(inputs)?;
        let mut per_sample = Vec::with_capacity(passes * n_exits);
        for pass in 0..passes {
            self.reseed_mc_streams(stream_seed(seed, pass as u64));
            for logits in self.exits_from_activations_int(&acts, Mode::McSample)? {
                per_sample.push(softmax(&logits)?);
            }
        }
        if n_samples > 0 && per_sample.len() > n_samples {
            per_sample.truncate(n_samples);
        }
        Ok(Tensor::mean_of(&per_sample)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_models::{zoo, ModelConfig, ResidualBlock};
    use bnn_nn::prelude::*;

    fn fmt(total: u32, int: u32) -> FixedPointFormat {
        FixedPointFormat::new(total, int).unwrap()
    }

    fn small_cnn() -> Sequential {
        let mut net = Sequential::new("small_cnn");
        net.push(Conv2d::new(1, 4, 3, 1, 1, 1).unwrap());
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 2).unwrap());
        net.push(Flatten::new());
        net.push(Dense::new(4 * 4 * 4, 3, 2).unwrap());
        net
    }

    fn calib_batch(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        Tensor::randn(dims, &mut rng)
    }

    #[test]
    fn eight_bit_integer_path_matches_float_sim_bitwise() {
        // All intermediate products/sums of an 8-bit LeNet block stay below
        // 2^24, where f32 is exact — the sim and the integer path must agree
        // exactly, not just within a step.
        let net = small_cnn();
        let calib = calib_batch(&[6, 1, 8, 8], 3);
        let mut q = QuantizedSequential::lower(&net, fmt(8, 3), &calib).unwrap();
        let x = calib_batch(&[2, 1, 8, 8], 4);
        let int_out = q
            .forward_int(&q.quantize_input(&x), Mode::Eval)
            .unwrap()
            .dequantize();
        let sim_out = q.forward_float_sim(&x, Mode::Eval).unwrap();
        assert_eq!(int_out.as_slice(), sim_out.as_slice());
        assert_eq!(q.num_ops(), 5);
        assert_eq!(q.total_bits(), 8);
    }

    #[test]
    fn four_bit_path_runs_and_output_is_on_grid() {
        let net = small_cnn();
        let calib = calib_batch(&[6, 1, 8, 8], 5);
        let mut q = QuantizedSequential::lower(&net, fmt(4, 2), &calib).unwrap();
        let x = calib_batch(&[3, 1, 8, 8], 6);
        let out = q.forward_int(&q.quantize_input(&x), Mode::Eval).unwrap();
        let eps = out.params().scale();
        for &v in out.dequantize().as_slice() {
            let steps = v / eps;
            assert!((steps - steps.round()).abs() < 1e-4);
        }
    }

    #[test]
    fn residual_block_with_batchnorm_lowers_and_tracks_sim() {
        let mut main = Sequential::new("main");
        main.push(Conv2d::new(3, 3, 3, 1, 1, 1).unwrap());
        main.push(BatchNorm2d::new(3).unwrap());
        main.push(Relu::new());
        let block = ResidualBlock::new(main, Sequential::new("shortcut"));
        let mut outer = Sequential::new("res");
        outer.push(block);
        let calib = calib_batch(&[4, 3, 6, 6], 7);
        let mut q = QuantizedSequential::lower(&outer, fmt(8, 3), &calib).unwrap();
        let x = calib_batch(&[2, 3, 6, 6], 8);
        let int_out = q
            .forward_int(&q.quantize_input(&x), Mode::Eval)
            .unwrap()
            .dequantize();
        let sim_out = q.forward_float_sim(&x, Mode::Eval).unwrap();
        // The affine multipliers make exactness format-dependent; one step
        // of the output grid bounds the drift.
        let eps = q.out_params().scale();
        for (a, b) in int_out.as_slice().iter().zip(sim_out.as_slice()) {
            assert!((a - b).abs() <= eps + 1e-6, "{a} vs {b} (eps {eps})");
        }
        // residual output is non-negative (merged ReLU)
        assert!(int_out.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn mc_dropout_masks_are_stream_seeded_and_domain_consistent() {
        let mut net = Sequential::new("mcd");
        net.push(Dense::new(16, 32, 1).unwrap());
        net.push(McDropout::new(0.5, 9).unwrap());
        let calib = calib_batch(&[8, 16], 9);
        let mut q = QuantizedSequential::lower(&net, fmt(8, 3), &calib).unwrap();
        let x = calib_batch(&[2, 16], 10);

        let mut streams = SplitMix64::new(77);
        q.reseed_mc(&mut streams);
        let a = q
            .forward_int(&q.quantize_input(&x), Mode::McSample)
            .unwrap()
            .dequantize();
        let b = q
            .forward_int(&q.quantize_input(&x), Mode::McSample)
            .unwrap()
            .dequantize();
        assert_ne!(a.as_slice(), b.as_slice(), "fresh masks must differ");

        // reseeding replays the exact masks, and the sim draws the same ones
        let mut streams = SplitMix64::new(77);
        q.reseed_mc(&mut streams);
        let a2 = q
            .forward_int(&q.quantize_input(&x), Mode::McSample)
            .unwrap()
            .dequantize();
        assert_eq!(a.as_slice(), a2.as_slice());
        let mut streams = SplitMix64::new(77);
        q.reseed_mc(&mut streams);
        let sim = q.forward_float_sim(&x, Mode::McSample).unwrap();
        for (ai, si) in a.as_slice().iter().zip(sim.as_slice()) {
            assert_eq!(*ai == 0.0, *si == 0.0, "mask positions must agree");
        }
        // Eval mode is deterministic and mask-free
        let e1 = q
            .forward_int(&q.quantize_input(&x), Mode::Eval)
            .unwrap()
            .dequantize();
        let e2 = q
            .forward_int(&q.quantize_input(&x), Mode::Eval)
            .unwrap()
            .dequantize();
        assert_eq!(e1.as_slice(), e2.as_slice());
    }

    #[test]
    fn max_magnitude_inputs_saturate_instead_of_wrapping() {
        // Saturation edge case: a dense layer fed the format's extreme
        // values with extreme weights must pin at the output format's range.
        let mut net = Sequential::new("sat");
        let mut dense = Dense::new(8, 2, 0).unwrap();
        for w in dense.params_mut()[0].value.as_mut_slice() {
            *w = 100.0; // far beyond any 4-bit grid: saturates to qmax
        }
        net.push(dense);
        // Calibrate on small activations so the output format underestimates
        // the extreme case below.
        let calib = calib_batch(&[4, 8], 11);
        let mut q = QuantizedSequential::lower(&net, fmt(4, 2), &calib).unwrap();
        let x = Tensor::full(&[1, 8], 1e9); // saturates to the input qmax
        let out = q.forward_int(&q.quantize_input(&x), Mode::Eval).unwrap();
        let out_p = out.params();
        for i in 0..out.len() {
            assert_eq!(out.data().code(i), out_p.qmax(), "must pin at qmax");
        }
        let xn = Tensor::full(&[1, 8], -1e9);
        let out = q.forward_int(&q.quantize_input(&xn), Mode::Eval).unwrap();
        for i in 0..out.len() {
            assert_eq!(out.data().code(i), out_p.qmin(), "must pin at qmin");
        }
    }

    #[test]
    fn sixteen_bit_formats_use_wide_kernels() {
        let net = small_cnn();
        let calib = calib_batch(&[4, 1, 8, 8], 12);
        let mut q = QuantizedSequential::lower(&net, fmt(16, 6), &calib).unwrap();
        let x = calib_batch(&[1, 1, 8, 8], 13);
        let qx = q.quantize_input(&x);
        assert!(matches!(qx.data(), QuantData::I16(_)));
        let out = q.forward_int(&qx, Mode::Eval).unwrap();
        assert!(matches!(out.data(), QuantData::I16(_)));
        // 16-bit quantization barely perturbs the float sim
        let sim = q.forward_float_sim(&x, Mode::Eval).unwrap();
        let eps = q.out_params().scale();
        for (a, b) in out.dequantize().as_slice().iter().zip(sim.as_slice()) {
            assert!((a - b).abs() <= eps, "{a} vs {b}");
        }
    }

    #[test]
    fn wider_than_sixteen_bits_is_rejected() {
        let net = small_cnn();
        let calib = calib_batch(&[2, 1, 8, 8], 14);
        let err = QuantizedSequential::lower(&net, fmt(24, 8), &calib).unwrap_err();
        assert!(matches!(err, QuantError::Unsupported(_)));
    }

    #[test]
    fn softmax_layers_have_no_integer_lowering() {
        let mut net = Sequential::new("soft");
        net.push(Dense::new(4, 2, 0).unwrap());
        net.push(Softmax::new());
        let calib = calib_batch(&[2, 4], 15);
        let err = QuantizedSequential::lower(&net, fmt(8, 3), &calib).unwrap_err();
        assert!(matches!(err, QuantError::Unsupported(_)));
    }

    #[test]
    fn multi_exit_lowering_predicts_reproducibly() {
        let spec = zoo::lenet5(
            &ModelConfig::mnist()
                .with_resolution(10, 10)
                .with_width_divisor(8)
                .with_classes(4),
        )
        .with_exits_after_every_block()
        .unwrap()
        .with_exit_mcd(0.25)
        .unwrap();
        let trained = spec.build(1).unwrap();
        let calib = calib_batch(&[8, 1, 10, 10], 16);
        let mut q = QuantizedMultiExitNetwork::lower(&trained, fmt(8, 3), &calib).unwrap();
        assert_eq!(q.num_exits(), 2);
        assert_eq!(q.num_classes(), 4);
        assert_eq!(q.format(), fmt(8, 3));

        let x = calib_batch(&[3, 1, 10, 10], 17);
        let probs = q.predict_probs(&x, 4, 2023).unwrap();
        assert_eq!(probs.dims(), &[3, 4]);
        for b in 0..3 {
            let s: f32 = probs.as_slice()[b * 4..(b + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {b} sums to {s}");
        }
        // seeded reproducibility; different seed, different samples
        let again = q.predict_probs(&x, 4, 2023).unwrap();
        assert_eq!(probs.as_slice(), again.as_slice());
        let other = q.predict_probs(&x, 4, 7).unwrap();
        assert_ne!(probs.as_slice(), other.as_slice());
    }

    #[test]
    fn avg_pool_division_rounds_half_away_from_zero() {
        assert_eq!(div_round(5, 2), 3);
        assert_eq!(div_round(-5, 2), -3);
        assert_eq!(div_round(7, 4), 2);
        assert_eq!(div_round(-7, 4), -2);
        assert_eq!(div_round(6, 4), 2); // 1.5 away from zero
        assert_eq!(div_round(-6, 4), -2);
        assert_eq!(div_round(0, 9), 0);
    }
}
