//! # bnn-quant
//!
//! Fixed-point quantization for the BayesNN-FPGA reproduction, playing the
//! role QKeras plays in the paper: Phase 3 of the transformation framework
//! searches bitwidths in `{4, 6, 8, 16}` and channel scalings, subject to not
//! degrading algorithmic quality.
//!
//! The crate provides **two execution models** for a quantized network:
//!
//! * **Fake quantization** ([`FixedPointFormat`], [`quantize_network`]) —
//!   weights are snapped to the `ap_fixed<W, I>` grid but evaluation stays in
//!   `f32` on the float kernels. This is the classic pre-HLS error model and
//!   remains available as the Phase 3 A/B reference.
//! * **True integer inference** ([`QuantParams`], [`QuantizedTensor`],
//!   [`QuantizedSequential`], [`QuantizedMultiExitNetwork`] in [`net`]) —
//!   activations are calibrated per tensor over a representative batch,
//!   weights/biases are stored as `i8`/`i16` codes, and inference runs on the
//!   integer kernels of `bnn_tensor::int` with `i32`/`i64` accumulation,
//!   power-of-two requantization shifts and explicit saturation — the
//!   arithmetic the FPGA datapath actually performs, including Monte-Carlo
//!   dropout masks applied in the integer domain from seeded streams.
//!
//! # Worked example: calibrate → lower → integer predict
//!
//! ```
//! use bnn_models::{zoo, ModelConfig};
//! use bnn_nn::layer::Mode;
//! use bnn_quant::{FixedPointFormat, QuantizedMultiExitNetwork};
//! use bnn_tensor::rng::Xoshiro256StarStar;
//! use bnn_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small multi-exit LeNet-5 (training elided; weights are the build
//! // initialisation here).
//! let spec = zoo::lenet5(&ModelConfig::mnist().with_resolution(12, 12).with_width_divisor(4))
//!     .with_exits_after_every_block()?
//!     .with_exit_mcd(0.25)?;
//! let trained = spec.build(7)?;
//!
//! // 1. Calibrate + lower: a representative batch fixes every activation
//! //    format; weights become i8 codes (8 total bits here).
//! let mut rng = Xoshiro256StarStar::seed_from_u64(1);
//! let calib = Tensor::randn(&[8, 1, 12, 12], &mut rng);
//! let format = FixedPointFormat::new(8, 3)?;
//! let mut qnet = QuantizedMultiExitNetwork::lower(&trained, format, &calib)?;
//!
//! // 2. Integer inference: deterministic logits per exit...
//! let inputs = Tensor::randn(&[4, 1, 12, 12], &mut rng);
//! let logits = qnet.forward_exits_int(&inputs, Mode::Eval)?;
//! assert_eq!(logits.last().unwrap().dims(), &[4, 10]);
//!
//! // 3. ...and seeded Monte-Carlo prediction (masks drawn in the integer
//! //    domain): bitwise reproducible for a given seed.
//! let probs = qnet.predict_probs(&inputs, 6, 2023)?;
//! let again = qnet.predict_probs(&inputs, 6, 2023)?;
//! assert_eq!(probs.as_slice(), again.as_slice());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitwidth;
pub mod calib;
pub mod error;
pub mod fixed;
pub mod model;
pub mod net;
pub mod params;
pub mod plan;
pub mod qtensor;
pub mod schedule;

pub use bitwidth::{BitwidthSearch, CandidateResult};
pub use calib::{CalibratedNetwork, GraphCalibration};
pub use error::QuantError;
pub use fixed::{FixedPointFormat, QuantizationError};
pub use model::{quantize_network, quantize_tensor, tensor_quantization_error};
pub use net::{QuantizedMultiExitNetwork, QuantizedSequential};
pub use params::{IntWidth, QuantParams};
pub use plan::QuantPlan;
pub use qtensor::{QuantData, QuantizedTensor};
pub use schedule::{PlanSchedule, ScheduleExit, ScheduleOp, ScheduleStep};
