//! # bnn-quant
//!
//! Fixed-point quantization for the BayesNN-FPGA reproduction, playing the
//! role QKeras plays in the paper: Phase 3 of the transformation framework
//! searches bitwidths in `{4, 6, 8, 16}` and channel scalings, subject to not
//! degrading algorithmic quality.
//!
//! The central type is [`FixedPointFormat`], an `ap_fixed<W, I>`-style signed
//! fixed-point format. Quantization here is *fake quantization*: values are
//! rounded to the representable grid but kept as `f32`, which is exactly how
//! post-training quantization error is evaluated before HLS code generation
//! commits to the arbitrary-precision types.
//!
//! # Example
//!
//! ```
//! use bnn_quant::FixedPointFormat;
//!
//! # fn main() -> Result<(), bnn_quant::QuantError> {
//! let q = FixedPointFormat::new(8, 3)?; // ap_fixed<8,3>
//! assert_eq!(q.quantize(0.3751), 0.375);
//! assert!(q.quantize(100.0) <= q.max_value());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitwidth;
pub mod error;
pub mod fixed;
pub mod model;

pub use bitwidth::{BitwidthSearch, CandidateResult};
pub use error::QuantError;
pub use fixed::{FixedPointFormat, QuantizationError};
pub use model::{quantize_network, quantize_tensor, tensor_quantization_error};
