//! Calibrate-once range records: the float calibration forward runs **once**
//! per trained model, and [`QuantParams`] for every candidate format are
//! derived from the recorded ranges.
//!
//! Before this module existed, lowering a network to the integer path ran a
//! full float forward pass over the calibration batch *per format* — Phase
//! 3's per-format loop paid that cost for each of the {4, 6, 8, 16}-bit
//! design points. [`CalibratedNetwork::calibrate`] now walks the lowered
//! graph once, recording per-tensor [`ValueRange`]s (weights and activation
//! edges) plus the per-sample shape of every op output; deriving a quantized
//! network ([`CalibratedNetwork::quantize`]) or a compiled execution plan
//! ([`CalibratedNetwork::plan`]) for a format is then pure bookkeeping — no
//! float inference, no model replica.
//!
//! Ranges are observed on the **unquantized** float graph (raw weights, raw
//! activations). The per-format integer/fractional splits derived from one
//! shared record are therefore identical across formats by construction,
//! which is also what makes a planned and an unplanned lowering of the same
//! record bit-exact against each other.

use crate::error::QuantError;
use crate::net::QuantizedMultiExitNetwork;
use crate::params::QuantParams;
use bnn_models::MultiExitNetwork;
use bnn_nn::lowering::LayerLowering;
use bnn_nn::Network;
use bnn_tensor::linalg::{im2col, matmul, ConvGeometry};
use bnn_tensor::Tensor;

/// An observed value range `[min, max]`, always containing zero (ranges start
/// at `[0, 0]` and only widen), matching the symmetric `ap_fixed` grids.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ValueRange {
    pub(crate) min: f32,
    pub(crate) max: f32,
}

impl ValueRange {
    /// Observes every value of a slice, widening the range.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::NonFinite`] on NaN/infinite values.
    pub(crate) fn observe(values: &[f32]) -> Result<ValueRange, QuantError> {
        let mut range = ValueRange::default();
        for &v in values {
            if !v.is_finite() {
                return Err(QuantError::NonFinite(format!(
                    "cannot calibrate over non-finite value {v}"
                )));
            }
            range.min = range.min.min(v);
            range.max = range.max.max(v);
        }
        Ok(range)
    }

    /// Derives the `total_bits`-wide format covering this range.
    ///
    /// # Errors
    ///
    /// Propagates [`QuantParams::from_range`] errors.
    pub(crate) fn params(&self, total_bits: u32) -> Result<QuantParams, QuantError> {
        QuantParams::from_range(total_bits, self.min, self.max)
    }
}

/// The calibration record of one lowered op: observed ranges plus the
/// per-sample output shape (batch axis stripped), in graph walk order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct OpRecord {
    /// Stable op name (sanity-checked against the lowering walk at build
    /// time — a cursor mismatch is an internal error, never silent skew).
    pub(crate) name: &'static str,
    /// Weight range (conv / dense only).
    pub(crate) weight: Option<ValueRange>,
    /// Output activation range (format-defining ops only).
    pub(crate) out: Option<ValueRange>,
    /// Per-sample output dims (batch axis stripped).
    pub(crate) out_dims: Vec<usize>,
}

/// The calibration record of one lowered graph: the input range/shape and
/// one op record per op in deterministic walk order (residual children
/// before the residual's own merge record).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphCalibration {
    pub(crate) input: ValueRange,
    pub(crate) in_dims: Vec<usize>,
    pub(crate) ops: Vec<OpRecord>,
}

impl GraphCalibration {
    /// Runs the pure-float calibration forward of `lowering` over `calib`,
    /// recording ranges and shapes; returns the record and the graph's
    /// output activation (for chaining block records).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::NonFinite`] for NaN/infinite weights or
    /// activations, or propagated shape errors.
    pub fn collect(lowering: &LayerLowering, calib: &Tensor) -> Result<(Self, Tensor), QuantError> {
        let input = ValueRange::observe(calib.as_slice())?;
        let in_dims = calib.dims()[1..].to_vec();
        let mut ops = Vec::new();
        let mut act = calib.clone();
        collect_into(lowering, &mut act, &mut ops)?;
        Ok((
            GraphCalibration {
                input,
                in_dims,
                ops,
            },
            act,
        ))
    }
}

/// A read cursor over the op records of one graph; the builder walks the
/// lowering in the same order the collector did and consumes one record per
/// op.
pub(crate) struct RecordCursor<'a> {
    ops: &'a [OpRecord],
    next: usize,
}

impl<'a> RecordCursor<'a> {
    pub(crate) fn new(ops: &'a [OpRecord]) -> Self {
        RecordCursor { ops, next: 0 }
    }

    /// Consumes the next record, checking it belongs to the expected op.
    pub(crate) fn take(&mut self, name: &'static str) -> Result<&'a OpRecord, QuantError> {
        let record = self.ops.get(self.next).ok_or_else(|| {
            QuantError::Internal(format!(
                "calibration record exhausted at op {name} (lowering/record skew)"
            ))
        })?;
        if record.name != name {
            return Err(QuantError::Internal(format!(
                "calibration record for {} consumed by op {name} (lowering/record skew)",
                record.name
            )));
        }
        self.next += 1;
        Ok(record)
    }

    /// Errors unless every record was consumed.
    pub(crate) fn finish(self) -> Result<(), QuantError> {
        if self.next != self.ops.len() {
            return Err(QuantError::Internal(format!(
                "lowering consumed {} of {} calibration records",
                self.next,
                self.ops.len()
            )));
        }
        Ok(())
    }
}

/// Appends the record(s) of `lowering` to `ops`, advancing the running float
/// activation.
fn push_record(
    ops: &mut Vec<OpRecord>,
    name: &'static str,
    weight: Option<ValueRange>,
    out: Option<ValueRange>,
    act: &Tensor,
) {
    ops.push(OpRecord {
        name,
        weight,
        out,
        out_dims: act.dims()[1..].to_vec(),
    });
}

fn collect_into(
    lowering: &LayerLowering,
    act: &mut Tensor,
    ops: &mut Vec<OpRecord>,
) -> Result<(), QuantError> {
    match lowering {
        LayerLowering::Sequence(children) => {
            for child in children {
                collect_into(child, act, ops)?;
            }
        }
        LayerLowering::Conv2d {
            weight,
            bias,
            stride,
            padding,
        } => {
            let dims = weight.dims();
            let (out_c, in_c, kernel) = (dims[0], dims[1], dims[2]);
            let w_range = ValueRange::observe(weight.as_slice())?;
            let w2d = weight.reshape(&[out_c, in_c * kernel * kernel])?;
            let y = conv_float(act, &w2d, bias.as_slice(), kernel, *stride, *padding)?;
            let out = ValueRange::observe(y.as_slice())?;
            *act = y;
            push_record(ops, lowering.name(), Some(w_range), Some(out), act);
        }
        LayerLowering::Dense { weight, bias } => {
            let w_range = ValueRange::observe(weight.as_slice())?;
            let y = dense_float(act, weight, bias.as_slice())?;
            let out = ValueRange::observe(y.as_slice())?;
            *act = y;
            push_record(ops, lowering.name(), Some(w_range), Some(out), act);
        }
        LayerLowering::Relu => {
            *act = act.map(|v| v.max(0.0));
            push_record(ops, lowering.name(), None, None, act);
        }
        LayerLowering::MaxPool2d { kernel, stride } => {
            *act = max_pool_float(act, *kernel, *stride)?;
            push_record(ops, lowering.name(), None, None, act);
        }
        LayerLowering::AvgPool2d { kernel, stride } => {
            // Plain averages: the range of the snapped integer average is
            // contained in the input format's range anyway (pooling cannot
            // widen a range), so no output range is recorded.
            let norm = 1.0 / (kernel * kernel) as f32;
            *act = pool_float_with(act, *kernel, *stride, 0.0, |a, v| a + v, |acc| acc * norm)?;
            push_record(ops, lowering.name(), None, None, act);
        }
        LayerLowering::GlobalAvgPool2d => {
            *act = global_avg_pool_plain(act)?;
            push_record(ops, lowering.name(), None, None, act);
        }
        LayerLowering::Flatten => {
            let batch = act.dims()[0];
            let rest: usize = act.dims()[1..].iter().product();
            *act = act.reshape(&[batch, rest])?;
            push_record(ops, lowering.name(), None, None, act);
        }
        LayerLowering::Affine { scale, shift } => {
            let y = affine_float(act, scale, shift, scale.len())?;
            let out = ValueRange::observe(y.as_slice())?;
            *act = y;
            push_record(ops, lowering.name(), None, Some(out), act);
        }
        LayerLowering::McDropout { .. } => {
            // Calibration runs the deterministic path; the op only becomes
            // stochastic in Mode::McSample and never widens the range.
            push_record(ops, lowering.name(), None, None, act);
        }
        LayerLowering::Identity => push_record(ops, lowering.name(), None, None, act),
        LayerLowering::Residual { main, shortcut } => {
            let input = act.clone();
            let mut main_act = input.clone();
            for child in main {
                collect_into(child, &mut main_act, ops)?;
            }
            let mut short_act = input;
            for child in shortcut {
                collect_into(child, &mut short_act, ops)?;
            }
            let sum = main_act.add(&short_act)?.map(|v| v.max(0.0));
            let out = ValueRange::observe(sum.as_slice())?;
            *act = sum;
            push_record(ops, lowering.name(), None, Some(out), act);
        }
    }
    Ok(())
}

/// Float-reference convolution on a lowered weight matrix (shared by
/// calibration, the fake-quant float simulation and the float plans).
pub(crate) fn conv_float(
    x: &Tensor,
    w2d: &Tensor,
    bias: &[f32],
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Result<Tensor, QuantError> {
    let (batch, _c, h, w) = x.shape().as_nchw()?;
    let geom = ConvGeometry::square(h, w, kernel, stride, padding);
    let cols = im2col(x, &geom)?;
    let out2d = matmul(w2d, &cols)?;
    let out_c = w2d.dims()[0];
    let plane = geom.out_h() * geom.out_w();
    let data =
        crate::net::reorder_to_nchw(out2d.as_slice(), out_c, batch, plane, 0.0f32, |co, v| {
            v + bias[co]
        });
    Ok(Tensor::from_vec(
        data,
        &[batch, out_c, geom.out_h(), geom.out_w()],
    )?)
}

/// Float-reference dense layer.
pub(crate) fn dense_float(x: &Tensor, w: &Tensor, bias: &[f32]) -> Result<Tensor, QuantError> {
    let mut out = matmul(x, w)?;
    let out_f = w.dims()[1];
    for row in out.as_mut_slice().chunks_exact_mut(out_f) {
        for (o, &b) in row.iter_mut().zip(bias) {
            *o += b;
        }
    }
    Ok(out)
}

/// Float reference of square-window pooling: `combine` folds the window
/// values, `finish` maps the folded value to the output.
pub(crate) fn pool_float_with(
    x: &Tensor,
    kernel: usize,
    stride: usize,
    init: f32,
    combine: impl Fn(f32, f32) -> f32,
    finish: impl Fn(f32) -> f32,
) -> Result<Tensor, QuantError> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    let geom = ConvGeometry::square(h, w, kernel, stride, 0);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let data = x.as_slice();
    let mut out = vec![0.0f32; n * c * oh * ow];
    for b in 0..n {
        for ch in 0..c {
            for y in 0..oh {
                for xx in 0..ow {
                    let mut acc = init;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = y * stride + ky;
                            let ix = xx * stride + kx;
                            if iy < h && ix < w {
                                acc = combine(acc, data[((b * c + ch) * h + iy) * w + ix]);
                            }
                        }
                    }
                    out[((b * c + ch) * oh + y) * ow + xx] = finish(acc);
                }
            }
        }
    }
    Ok(Tensor::from_vec(out, &[n, c, oh, ow])?)
}

/// Float reference of max pooling (the max of on-grid values is on-grid).
pub(crate) fn max_pool_float(
    x: &Tensor,
    kernel: usize,
    stride: usize,
) -> Result<Tensor, QuantError> {
    pool_float_with(x, kernel, stride, f32::NEG_INFINITY, f32::max, |v| v)
}

/// Float reference of average pooling, with results snapped back onto the
/// activation grid (mirroring the integer rounding division).
pub(crate) fn avg_pool_float(
    x: &Tensor,
    kernel: usize,
    stride: usize,
    params: QuantParams,
) -> Result<Tensor, QuantError> {
    let norm = 1.0 / (kernel * kernel) as f32;
    pool_float_with(
        x,
        kernel,
        stride,
        0.0,
        |a, v| a + v,
        |acc| params.fake_quantize(acc * norm),
    )
}

/// Float reference of global average pooling, without grid snapping (the
/// calibration forward).
pub(crate) fn global_avg_pool_plain(x: &Tensor) -> Result<Tensor, QuantError> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    let plane = h * w;
    let data = x.as_slice();
    let mut out = vec![0.0f32; n * c];
    for b in 0..n {
        for ch in 0..c {
            let start = (b * c + ch) * plane;
            let acc: f32 = data[start..start + plane].iter().sum();
            out[b * c + ch] = acc / plane as f32;
        }
    }
    Ok(Tensor::from_vec(out, &[n, c])?)
}

/// Float reference of global average pooling, snapped onto the grid (the
/// fake-quant simulation).
pub(crate) fn global_avg_pool_float(x: &Tensor, params: QuantParams) -> Result<Tensor, QuantError> {
    Ok(global_avg_pool_plain(x)?.map(|v| params.fake_quantize(v)))
}

/// Float reference of a per-channel affine over NCHW data.
pub(crate) fn affine_float(
    x: &Tensor,
    scale: &[f32],
    shift: &[f32],
    channels: usize,
) -> Result<Tensor, QuantError> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    if c != channels {
        return Err(QuantError::Internal(format!(
            "affine over {channels} channel(s) received {c}"
        )));
    }
    let plane = h * w;
    let mut out = x.clone();
    let data = out.as_mut_slice();
    for b in 0..n {
        for ch in 0..c {
            let start = (b * c + ch) * plane;
            for v in &mut data[start..start + plane] {
                *v = scale[ch] * *v + shift[ch];
            }
        }
    }
    Ok(out)
}

/// A trained multi-exit network calibrated **once**: the lowered inference
/// graphs of every backbone block and exit branch, paired with their range
/// records. Per-format artifacts — [`QuantizedMultiExitNetwork`]s and
/// compiled [`crate::QuantPlan`]s — derive from this without re-running any
/// float inference, which is what lets Phase 3 score every `(format, reuse)`
/// design point against a single calibration pass.
///
/// # Example
///
/// ```
/// use bnn_models::{zoo, ModelConfig};
/// use bnn_quant::{CalibratedNetwork, FixedPointFormat};
/// use bnn_tensor::rng::Xoshiro256StarStar;
/// use bnn_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = zoo::lenet5(&ModelConfig::mnist().with_resolution(12, 12).with_width_divisor(4))
///     .with_exits_after_every_block()?
///     .with_exit_mcd(0.25)?;
/// let trained = spec.build(7)?; // (train it for real use)
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let calib = Tensor::randn(&[4, 1, 12, 12], &mut rng);
///
/// // One float calibration pass...
/// let calibrated = CalibratedNetwork::calibrate(&trained, &calib)?;
/// // ...then every searched format derives without further float inference.
/// for (total, int) in [(4, 2), (6, 2), (8, 3), (16, 6)] {
///     let qnet = calibrated.quantize(FixedPointFormat::new(total, int)?)?;
///     assert_eq!(qnet.num_exits(), 2);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CalibratedNetwork {
    pub(crate) blocks: Vec<(LayerLowering, GraphCalibration)>,
    pub(crate) exits: Vec<(usize, LayerLowering, GraphCalibration)>,
    pub(crate) input: ValueRange,
    pub(crate) in_dims: Vec<usize>,
    pub(crate) classes: usize,
}

impl CalibratedNetwork {
    /// Lowers the trained network and runs the single float calibration
    /// forward over the representative batch `calib` (which must have the
    /// network's input shape).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Unsupported`] for layers without an inference
    /// lowering, [`QuantError::NonFinite`] for NaN/infinite weights or
    /// activations, or propagated shape errors.
    pub fn calibrate(network: &MultiExitNetwork, calib: &Tensor) -> Result<Self, QuantError> {
        let input = ValueRange::observe(calib.as_slice())?;
        let in_dims = calib.dims()[1..].to_vec();
        let mut act = calib.clone();
        let mut blocks = Vec::new();
        let mut block_acts = Vec::new();
        for lowering in network.block_lowerings()? {
            let (record, out_act) = GraphCalibration::collect(&lowering, &act)?;
            act = out_act;
            block_acts.push(act.clone());
            blocks.push((lowering, record));
        }
        let mut exits = Vec::new();
        for (after_block, lowering) in network.exit_lowerings()? {
            let (record, _out) = GraphCalibration::collect(&lowering, &block_acts[after_block])?;
            exits.push((after_block, lowering, record));
        }
        Ok(CalibratedNetwork {
            blocks,
            exits,
            input,
            in_dims,
            classes: network.num_classes(),
        })
    }

    /// Number of exits.
    pub fn num_exits(&self) -> usize {
        self.exits.len()
    }

    /// Number of predicted classes.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Derives the unplanned integer network for one format — pure
    /// bookkeeping over the stored records, no float inference.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Unsupported`] for formats wider than 16 bits,
    /// or [`QuantError::Internal`] on lowering/record skew.
    pub fn quantize(
        &self,
        format: crate::fixed::FixedPointFormat,
    ) -> Result<QuantizedMultiExitNetwork, QuantError> {
        QuantizedMultiExitNetwork::from_calibrated(self, format)
    }
}
