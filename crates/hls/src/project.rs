//! HLS project emission.
//!
//! [`HlsProject::generate`] turns a [`NetworkSpec`] plus an [`HlsConfig`] into
//! the full set of files an hls4ml-style project contains. The project can be
//! inspected in memory (for tests and the framework's reports) or written to
//! disk for a real Vivado-HLS run.

use crate::config::HlsConfig;
use crate::error::HlsError;
use crate::templates;
use bnn_hw::MappingStrategy;
use bnn_models::{LayerSpec, NetworkSpec};
use std::collections::BTreeMap;
use std::path::Path;

/// An in-memory HLS project: a map from relative file path to file contents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HlsProject {
    files: BTreeMap<String, String>,
    name: String,
}

impl HlsProject {
    /// Generates the project for a network spec.
    ///
    /// # Errors
    ///
    /// Returns an error if the spec fails validation.
    pub fn generate(spec: &NetworkSpec, config: &HlsConfig) -> Result<Self, HlsError> {
        spec.validate()?;
        let mut files = BTreeMap::new();
        let name = config.project_name.clone();

        files.insert(format!("firmware/{name}.cpp"), top_level_cpp(spec, config));
        files.insert(format!("firmware/{name}.h"), top_level_header(spec, config));
        files.insert("firmware/defines.h".into(), defines_header(spec, config));
        files.insert(
            "firmware/parameters.h".into(),
            parameters_header(spec, config),
        );
        files.insert(
            "firmware/weights/weights.h".into(),
            weights_header(spec, config),
        );
        files.insert(
            "firmware/nnet_utils/nnet_mc_dropout.h".into(),
            templates::mc_dropout_header(config),
        );
        files.insert("build_prj.tcl".into(), build_tcl(config));
        files.insert("README.md".into(), project_readme(spec, config));

        Ok(HlsProject { files, name })
    }

    /// Assembles a project from pre-rendered files (the lowered-graph
    /// emitter builds its file set step by step).
    pub(crate) fn from_files(name: String, files: BTreeMap<String, String>) -> Self {
        HlsProject { files, name }
    }

    /// Project name (top-level function name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The contents of a file, if it exists.
    pub fn file(&self, path: &str) -> Option<&str> {
        self.files.get(path).map(String::as_str)
    }

    /// All file paths in the project.
    pub fn paths(&self) -> Vec<&str> {
        self.files.keys().map(String::as_str).collect()
    }

    /// Total number of generated source lines.
    pub fn total_lines(&self) -> usize {
        self.files.values().map(|c| c.lines().count()).sum()
    }

    /// Writes the project under `root` (creating directories as needed).
    ///
    /// # Errors
    ///
    /// Returns [`HlsError::Io`] if any file cannot be written.
    pub fn write_to_dir(&self, root: &Path) -> Result<(), HlsError> {
        for (rel, contents) in &self.files {
            let path = root.join(rel);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(&path, contents)?;
        }
        Ok(())
    }
}

/// Flattens the spec into `(index, layer, segment-name)` triples in execution
/// order: backbone blocks first, then each exit branch.
fn flatten_layers(spec: &NetworkSpec) -> Vec<(usize, LayerSpec, String)> {
    let mut out = Vec::new();
    let mut index = 0usize;
    for (b, block) in spec.blocks.iter().enumerate() {
        for layer in block {
            out.push((index, layer.clone(), format!("block{b}")));
            index += 1;
        }
    }
    for (e, exit) in spec.exits.iter().enumerate() {
        for layer in &exit.layers {
            out.push((index, layer.clone(), format!("exit{e}")));
            index += 1;
        }
    }
    out
}

fn top_level_cpp(spec: &NetworkSpec, config: &HlsConfig) -> String {
    let name = &config.project_name;
    let layers = flatten_layers(spec);
    let engines = config
        .mapping
        .engines(config.mc_samples.div_ceil(spec.num_exits().max(1)).max(1));
    let mut body = String::new();
    let mut stream = "input_stream".to_string();
    let mut current_segment = String::new();
    for (index, layer, segment) in &layers {
        if segment != &current_segment {
            body.push_str(&format!("\n    // ---- {segment} ----\n"));
            current_segment = segment.clone();
            if segment.starts_with("exit") {
                // every exit branch restarts from the cached backbone tensor
                stream = "backbone_cache".to_string();
            }
        }
        let (call, out) = templates::layer_call(*index, layer, &stream, config);
        body.push_str(&call);
        body.push('\n');
        body.push_str(&format!(
            "    hls::stream<data_t> {out};\n#pragma HLS STREAM variable={out} depth=64\n"
        ));
        stream = out;
    }
    format!(
        r#"// Auto-generated by the bnn-hls transformation framework (Phase 4).
// Multi-exit MCD BayesNN accelerator: {spec_name}
#include "{name}.h"
#include "parameters.h"
#include "nnet_utils/nnet_mc_dropout.h"

void {name}(
    hls::stream<data_t> &input_stream,
    hls::stream<result_t> &output_stream
) {{
#pragma HLS INTERFACE axis port=input_stream
#pragma HLS INTERFACE axis port=output_stream
#pragma HLS DATAFLOW

    // The non-Bayesian backbone output is cached and cloned so the
    // {engines} MC engine(s) can reuse it across Monte-Carlo samples.
    hls::stream<data_t> backbone_cache;
#pragma HLS STREAM variable=backbone_cache depth=1024
{body}
    nnet::ensemble_average<data_t, result_t, NUM_EXITS, MC_SAMPLES>(exit_streams, output_stream);
}}
"#,
        spec_name = spec.name,
    )
}

fn top_level_header(spec: &NetworkSpec, config: &HlsConfig) -> String {
    let name = &config.project_name;
    format!(
        r#"#ifndef {upper}_H_
#define {upper}_H_

#include "ap_fixed.h"
#include "hls_stream.h"
#include "defines.h"

// {spec_name}: {exits} exit(s), {mcd} MCD layer(s)
void {name}(
    hls::stream<data_t> &input_stream,
    hls::stream<result_t> &output_stream
);

#endif
"#,
        upper = name.to_uppercase(),
        spec_name = spec.name,
        exits = spec.num_exits(),
        mcd = spec.mcd_layer_count(),
    )
}

fn defines_header(spec: &NetworkSpec, config: &HlsConfig) -> String {
    let mut out =
        String::from("#ifndef DEFINES_H_\n#define DEFINES_H_\n\n#include \"ap_fixed.h\"\n\n");
    out.push_str(&format!("typedef {} data_t;\n", config.cpp_type()));
    out.push_str(&format!("typedef {} result_t;\n\n", config.cpp_type()));
    out.push_str(&format!("#define NUM_EXITS {}\n", spec.num_exits()));
    out.push_str(&format!("#define MC_SAMPLES {}\n", config.mc_samples));
    out.push_str(&format!("#define N_CLASSES {}\n", spec.classes));
    out.push_str(&format!(
        "#define INPUT_SIZE {}\n\n",
        spec.in_channels * spec.height * spec.width
    ));
    // Per-MCD-layer dropout buffer sizes.
    let mut shape = spec.input_shape(1);
    let mut index = 0usize;
    for block in &spec.blocks {
        for layer in block {
            if matches!(layer, LayerSpec::McDropout { .. }) {
                out.push_str(&format!("#define DROPOUT_SIZE_{index} {}\n", shape.len()));
            }
            if let Ok(next) = layer.output_shape(&shape) {
                shape = next;
            }
            index += 1;
        }
    }
    let block_shapes = spec.block_output_shapes().unwrap_or_default();
    for exit in &spec.exits {
        let mut s = block_shapes
            .get(exit.after_block)
            .cloned()
            .unwrap_or_else(|| spec.input_shape(1));
        for layer in &exit.layers {
            if matches!(layer, LayerSpec::McDropout { .. }) {
                out.push_str(&format!("#define DROPOUT_SIZE_{index} {}\n", s.len()));
            }
            if let Ok(next) = layer.output_shape(&s) {
                s = next;
            }
            index += 1;
        }
    }
    out.push_str("\n#endif\n");
    out
}

fn parameters_header(spec: &NetworkSpec, config: &HlsConfig) -> String {
    let mut out = String::from(
        "#ifndef PARAMETERS_H_\n#define PARAMETERS_H_\n\n#include \"defines.h\"\n#include \"weights/weights.h\"\n\n",
    );
    for (index, layer, _) in flatten_layers(spec) {
        out.push_str(&templates::layer_config_struct(index, &layer, config));
        out.push('\n');
    }
    out.push_str("#endif\n");
    out
}

fn weights_header(spec: &NetworkSpec, config: &HlsConfig) -> String {
    let mut out =
        String::from("#ifndef WEIGHTS_H_\n#define WEIGHTS_H_\n\n#include \"../defines.h\"\n\n");
    let mut total = 0usize;
    for (index, layer, _) in flatten_layers(spec) {
        let (w, b) = templates::weight_counts(&layer);
        if w > 0 {
            out.push_str(&format!("// layer {index}: {w} weights, {b} biases\n"));
            out.push_str(&format!("static const data_t w{index}[{w}] = {{0}};\n"));
            out.push_str(&format!("static const data_t b{index}[{b}] = {{0}};\n\n"));
            total += w + b;
        }
    }
    out.push_str(&format!(
        "// total parameters: {total} ({} bits each)\n#endif\n",
        config.format.total_bits()
    ));
    out
}

pub(crate) fn build_tcl(config: &HlsConfig) -> String {
    let engines = match config.mapping {
        MappingStrategy::Spatial => "spatial",
        MappingStrategy::Temporal => "temporal",
        MappingStrategy::Hybrid { .. } => "hybrid",
    };
    format!(
        r#"# Auto-generated Vivado-HLS build script (Phase 4).
open_project {name}_prj
set_top {name}
add_files firmware/{name}.cpp -cflags "-Ifirmware/nnet_utils"
open_solution "solution1"
set_part {{{part}}}
create_clock -period {period} -name default
config_schedule -enable_dsp_full_reg
# mapping strategy: {engines}, reuse factor: {reuse}
csynth_design
export_design -format ip_catalog
exit
"#,
        name = config.project_name,
        part = config.part,
        period = config.clock_period_ns,
        reuse = config.reuse_factor,
    )
}

fn project_readme(spec: &NetworkSpec, config: &HlsConfig) -> String {
    format!(
        "# {name}\n\nAuto-generated HLS project for `{model}` ({exits} exits, {mcd} MCD layers).\n\n* Fixed-point type: `{ty}`\n* Reuse factor: {reuse}\n* Clock period: {period} ns\n* Mapping: {mapping}\n* MC samples: {samples}\n\nRun `vivado_hls -f build_prj.tcl` to synthesise.\n",
        name = config.project_name,
        model = spec.name,
        exits = spec.num_exits(),
        mcd = spec.mcd_layer_count(),
        ty = config.cpp_type(),
        reuse = config.reuse_factor,
        period = config.clock_period_ns,
        mapping = config.mapping,
        samples = config.mc_samples,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_models::{zoo, ModelConfig};

    fn spec() -> NetworkSpec {
        zoo::lenet5(&ModelConfig::mnist().with_width_divisor(4))
            .with_exits_after_every_block()
            .unwrap()
            .with_exit_mcd(0.25)
            .unwrap()
    }

    #[test]
    fn project_contains_expected_files() {
        let project = HlsProject::generate(&spec(), &HlsConfig::new("bayes_lenet")).unwrap();
        for path in [
            "firmware/bayes_lenet.cpp",
            "firmware/bayes_lenet.h",
            "firmware/defines.h",
            "firmware/parameters.h",
            "firmware/weights/weights.h",
            "firmware/nnet_utils/nnet_mc_dropout.h",
            "build_prj.tcl",
            "README.md",
        ] {
            assert!(project.file(path).is_some(), "missing {path}");
        }
        assert_eq!(project.name(), "bayes_lenet");
        assert!(project.total_lines() > 100);
    }

    #[test]
    fn top_level_uses_dataflow_and_instantiates_every_layer() {
        let s = spec();
        let project = HlsProject::generate(&s, &HlsConfig::new("p")).unwrap();
        let cpp = project.file("firmware/p.cpp").unwrap();
        assert!(cpp.contains("#pragma HLS DATAFLOW"));
        assert!(cpp.contains("mc_dropout"));
        // one call per layer
        let layer_count: usize = s.blocks.iter().map(Vec::len).sum::<usize>()
            + s.exits.iter().map(|e| e.layers.len()).sum::<usize>();
        let call_count = cpp.matches("nnet::").count();
        assert!(
            call_count >= layer_count,
            "{call_count} calls for {layer_count} layers"
        );
    }

    #[test]
    fn defines_carry_fixed_point_type_and_mc_parameters() {
        let project = HlsProject::generate(
            &spec(),
            &HlsConfig::new("p")
                .with_format(bnn_quant::FixedPointFormat::new(8, 3).unwrap())
                .with_mc_samples(6),
        )
        .unwrap();
        let defines = project.file("firmware/defines.h").unwrap();
        assert!(defines.contains("typedef ap_fixed<8,3> data_t;"));
        assert!(defines.contains("#define MC_SAMPLES 6"));
        assert!(defines.contains("#define NUM_EXITS 2"));
        assert!(defines.contains("DROPOUT_SIZE_"));
    }

    #[test]
    fn weights_header_counts_parameters() {
        let s = spec();
        let project = HlsProject::generate(&s, &HlsConfig::new("p")).unwrap();
        let weights = project.file("firmware/weights/weights.h").unwrap();
        assert!(weights.contains(&format!("total parameters: {}", s.param_count())));
    }

    #[test]
    fn tcl_targets_configured_part_and_clock() {
        let project = HlsProject::generate(&spec(), &HlsConfig::new("p")).unwrap();
        let tcl = project.file("build_prj.tcl").unwrap();
        assert!(tcl.contains("set_part {xcku115-flvb2104-2-e}"));
        assert!(tcl.contains("create_clock -period 5.5"));
        assert!(tcl.contains("csynth_design"));
    }

    #[test]
    fn project_writes_to_disk() {
        let project = HlsProject::generate(&spec(), &HlsConfig::new("disk_test")).unwrap();
        let dir = std::env::temp_dir().join(format!("bnn_hls_test_{}", std::process::id()));
        project.write_to_dir(&dir).unwrap();
        assert!(dir.join("firmware/disk_test.cpp").exists());
        assert!(dir.join("firmware/nnet_utils/nnet_mc_dropout.h").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let mut bad = spec();
        bad.blocks.clear();
        assert!(HlsProject::generate(&bad, &HlsConfig::new("p")).is_err());
    }
}
