//! HLS C++ layer templates.
//!
//! Every function here returns a snippet of C++ that would be compiled by
//! Vivado-HLS. The templates mirror the hls4ml `nnet_utils` layer headers plus
//! the custom Monte-Carlo Dropout template the paper adds (Algorithm 1).

use crate::config::HlsConfig;
use bnn_models::LayerSpec;

/// The custom MCD layer header implementing the paper's Algorithm 1.
///
/// The generated function:
/// 1. iterates over the dropout buffer with `#pragma HLS PIPELINE II=1`,
/// 2. draws a uniform random number from a free-running 32-bit LFSR,
/// 3. zeroes the element when `uniform_random > keep_rate`,
/// 4. multiplies the kept element by `keep_rate` (the paper's scaling; the
///    framework folds the matching `1/keep_rate` factor into the next layer's
///    weights so the algorithmic semantics match inverted dropout).
pub fn mc_dropout_header(config: &HlsConfig) -> String {
    let data_t = config.cpp_type();
    format!(
        r#"#ifndef NNET_MC_DROPOUT_H_
#define NNET_MC_DROPOUT_H_

#include "ap_fixed.h"
#include "nnet_common.h"

namespace nnet {{

struct mc_dropout_config {{
    static const unsigned dropout_size = 10;
    static const unsigned lfsr_seed = 0xACE1u;
}};

// 32-bit Fibonacci LFSR (taps 32, 22, 2, 1): one uniform word per call.
inline ap_uint<32> lfsr32_next(ap_uint<32> &state) {{
#pragma HLS INLINE
    ap_uint<1> bit = state[0] ^ state[10] ^ state[30] ^ state[31];
    state = (state >> 1) | (ap_uint<32>(bit) << 31);
    return state;
}}

// Monte-Carlo Dropout layer (Algorithm 1 of the paper).
//   Input : input[dropout_size], keep_rate
//   Output: output[dropout_size]
template<class data_T, class res_T, typename CONFIG_T>
void mc_dropout(
    hls::stream<data_T> &input,
    hls::stream<res_T>  &output,
    {data_t} keep_rate
) {{
    static ap_uint<32> lfsr_state = CONFIG_T::lfsr_seed;

DropoutLoop:
    for (unsigned i = 0; i < CONFIG_T::dropout_size; i++) {{
#pragma HLS PIPELINE II=1
        data_T temp = input.read();
        ap_uint<32> raw = lfsr32_next(lfsr_state);
        {data_t} uniform_random;
        uniform_random.range() = raw.range(31, 32 - uniform_random.width);
        if (uniform_random > keep_rate) {{
            temp = 0;
        }}
        output.write(temp * keep_rate);
    }}
}}

}} // namespace nnet

#endif
"#
    )
}

/// Returns the C++ call statement instantiating one layer inside the top-level
/// dataflow function, plus the name of its output stream.
pub fn layer_call(
    index: usize,
    layer: &LayerSpec,
    input_stream: &str,
    config: &HlsConfig,
) -> (String, String) {
    let out = format!("layer{index}_out");
    let reuse = config.reuse_factor;
    let call = match layer {
        LayerSpec::Conv2d { in_channels, out_channels, kernel, stride, padding } => format!(
            "    // conv2d: {in_channels}->{out_channels}, k={kernel}, s={stride}, p={padding}\n    nnet::conv_2d_cl<data_t, data_t, config{index}>({input_stream}, {out}, w{index}, b{index}); // REUSE={reuse}"
        ),
        LayerSpec::Dense { in_features, out_features } => format!(
            "    // dense: {in_features}->{out_features}\n    nnet::dense<data_t, data_t, config{index}>({input_stream}, {out}, w{index}, b{index}); // REUSE={reuse}"
        ),
        LayerSpec::BatchNorm2d { channels } => format!(
            "    // batchnorm: {channels} channels (folded scale/shift)\n    nnet::normalize<data_t, data_t, config{index}>({input_stream}, {out}, scale{index}, bias{index});"
        ),
        LayerSpec::Relu => format!(
            "    nnet::relu<data_t, data_t, config{index}>({input_stream}, {out});"
        ),
        LayerSpec::Softmax => format!(
            "    nnet::softmax<data_t, data_t, config{index}>({input_stream}, {out});"
        ),
        LayerSpec::MaxPool2d { kernel, stride } => format!(
            "    // maxpool k={kernel} s={stride}\n    nnet::pooling2d_cl<data_t, data_t, config{index}>({input_stream}, {out});"
        ),
        LayerSpec::AvgPool2d { kernel, stride } => format!(
            "    // avgpool k={kernel} s={stride}\n    nnet::pooling2d_cl<data_t, data_t, config{index}>({input_stream}, {out});"
        ),
        LayerSpec::GlobalAvgPool2d => format!(
            "    nnet::global_pooling2d_cl<data_t, data_t, config{index}>({input_stream}, {out});"
        ),
        LayerSpec::Flatten => format!(
            "    nnet::flatten<data_t, data_t, config{index}>({input_stream}, {out});"
        ),
        LayerSpec::Dropout { .. } => format!(
            "    // standard dropout is identity at inference\n    nnet::passthrough<data_t, data_t, config{index}>({input_stream}, {out});"
        ),
        LayerSpec::McDropout { rate } => format!(
            "    // Monte-Carlo dropout, rate={rate} (Algorithm 1)\n    nnet::mc_dropout<data_t, data_t, config{index}>({input_stream}, {out}, keep_rate{index});"
        ),
        LayerSpec::Residual { .. } => format!(
            "    // residual basic block (main + shortcut + add + relu)\n    nnet::residual_block<data_t, data_t, config{index}>({input_stream}, {out});"
        ),
    };
    (call, out)
}

/// Per-layer configuration struct emitted into `parameters.h`.
pub fn layer_config_struct(index: usize, layer: &LayerSpec, config: &HlsConfig) -> String {
    let reuse = config.reuse_factor;
    match layer {
        LayerSpec::Conv2d { in_channels, out_channels, kernel, stride, padding } => format!(
            "struct config{index} {{\n    static const unsigned in_chan = {in_channels};\n    static const unsigned out_chan = {out_channels};\n    static const unsigned filt_size = {kernel};\n    static const unsigned stride = {stride};\n    static const unsigned pad = {padding};\n    static const unsigned reuse_factor = {reuse};\n}};\n"
        ),
        LayerSpec::Dense { in_features, out_features } => format!(
            "struct config{index} {{\n    static const unsigned n_in = {in_features};\n    static const unsigned n_out = {out_features};\n    static const unsigned reuse_factor = {reuse};\n}};\n"
        ),
        LayerSpec::McDropout { rate } => {
            let keep = 1.0 - rate;
            format!(
                "struct config{index} : nnet::mc_dropout_config {{\n    static const unsigned dropout_size = DROPOUT_SIZE_{index};\n    // keep_rate = {keep}\n    static const unsigned reuse_factor = {reuse};\n}};\n"
            )
        }
        other => format!(
            "struct config{index} {{\n    // {other:?}\n    static const unsigned reuse_factor = {reuse};\n}};\n"
        ),
    }
}

/// Number of weight/bias scalars a layer needs in the weights header.
pub fn weight_counts(layer: &LayerSpec) -> (usize, usize) {
    match layer {
        LayerSpec::Conv2d {
            in_channels,
            out_channels,
            kernel,
            ..
        } => (in_channels * out_channels * kernel * kernel, *out_channels),
        LayerSpec::Dense {
            in_features,
            out_features,
        } => (in_features * out_features, *out_features),
        LayerSpec::BatchNorm2d { channels } => (*channels, *channels),
        LayerSpec::Residual { main, shortcut } => {
            let mut w = 0;
            let mut b = 0;
            for l in main.iter().chain(shortcut) {
                let (lw, lb) = weight_counts(l);
                w += lw;
                b += lb;
            }
            (w, b)
        }
        _ => (0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcd_header_reproduces_algorithm_1() {
        let header = mc_dropout_header(&HlsConfig::new("p"));
        // Pipelined loop over the dropout buffer.
        assert!(header.contains("#pragma HLS PIPELINE II=1"));
        assert!(header.contains("for (unsigned i = 0; i < CONFIG_T::dropout_size"));
        // Uniform RNG and keep-rate comparison and multiplication.
        assert!(header.contains("lfsr32_next"));
        assert!(header.contains("if (uniform_random > keep_rate)"));
        assert!(header.contains("temp = 0"));
        assert!(header.contains("output.write(temp * keep_rate)"));
        // Uses the configured fixed-point type.
        assert!(header.contains("ap_fixed<16,6>"));
    }

    #[test]
    fn mcd_header_respects_bitwidth() {
        let cfg = HlsConfig::new("p").with_format(bnn_quant::FixedPointFormat::new(8, 3).unwrap());
        let header = mc_dropout_header(&cfg);
        assert!(header.contains("ap_fixed<8,3>"));
    }

    #[test]
    fn layer_calls_name_streams_consistently() {
        let cfg = HlsConfig::new("p");
        let conv = LayerSpec::Conv2d {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let (call, out) = layer_call(4, &conv, "layer3_out", &cfg);
        assert_eq!(out, "layer4_out");
        assert!(call.contains("conv_2d_cl"));
        assert!(call.contains("layer3_out"));
        assert!(call.contains("layer4_out"));
        let mcd = LayerSpec::McDropout { rate: 0.25 };
        let (call, _) = layer_call(5, &mcd, "layer4_out", &cfg);
        assert!(call.contains("mc_dropout"));
        assert!(call.contains("keep_rate5"));
    }

    #[test]
    fn config_structs_embed_dimensions() {
        let cfg = HlsConfig::new("p").with_reuse_factor(16);
        let dense = LayerSpec::Dense {
            in_features: 64,
            out_features: 10,
        };
        let s = layer_config_struct(2, &dense, &cfg);
        assert!(s.contains("n_in = 64"));
        assert!(s.contains("n_out = 10"));
        assert!(s.contains("reuse_factor = 16"));
        let mcd = layer_config_struct(3, &LayerSpec::McDropout { rate: 0.5 }, &cfg);
        assert!(mcd.contains("mc_dropout_config"));
    }

    #[test]
    fn weight_counts_cover_parametrised_layers() {
        assert_eq!(
            weight_counts(&LayerSpec::Conv2d {
                in_channels: 3,
                out_channels: 8,
                kernel: 3,
                stride: 1,
                padding: 1
            }),
            (216, 8)
        );
        assert_eq!(
            weight_counts(&LayerSpec::Dense {
                in_features: 10,
                out_features: 4
            }),
            (40, 4)
        );
        assert_eq!(weight_counts(&LayerSpec::Relu), (0, 0));
        let res = LayerSpec::Residual {
            main: vec![LayerSpec::Conv2d {
                in_channels: 4,
                out_channels: 4,
                kernel: 3,
                stride: 1,
                padding: 1,
            }],
            shortcut: vec![],
        };
        assert_eq!(weight_counts(&res), (144, 4));
    }
}
