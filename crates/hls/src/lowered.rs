//! Lowered-graph HLS emission: per-tensor types, integer weights, and a
//! pipeline generated from the compiled plan's step schedule.
//!
//! [`LoweredDesign::generate`] is the calibrated counterpart of
//! [`HlsProject::generate`]: instead of rendering from the architecture spec
//! with one global width, it compiles the [`CalibratedNetwork`] into the
//! same [`QuantPlan`] the integer inference path executes, exports the
//! plan's flattened step list ([`PlanSchedule`]) and renders every file from
//! it:
//!
//! * `firmware/defines.h` — one `ap_fixed<W,I>` typedef **per tensor**
//!   (input and every step output), from the calibrated [`QuantParams`];
//! * `firmware/weights/weights.h` — the packed integer weight/bias codes
//!   the plan multiplies by (not floats), with their power-of-two scales;
//! * `firmware/parameters.h` — one config struct per step carrying the
//!   geometry and the exact requantize shifts;
//! * `firmware/{name}.cpp` — a `top()` whose call sequence is the identical
//!   flattened step list [`QuantPlan`] walks: residual fork/merge,
//!   requantize shifts, integer relu/pool and exit heads included.
//!
//! Because every constant is an integer code or a power-of-two exponent,
//! emission is fully deterministic — the golden-file tests pin the output
//! byte for byte. [`crate::sim::HlsSimulator`] interprets the same schedule
//! in pure Rust integer arithmetic and must match
//! [`QuantPlan::predict_probs`] bit for bit.
//!
//! [`CalibratedNetwork`]: bnn_quant::CalibratedNetwork
//! [`QuantPlan`]: bnn_quant::QuantPlan
//! [`QuantPlan::predict_probs`]: bnn_quant::QuantPlan::predict_probs
//! [`HlsProject::generate`]: crate::HlsProject::generate

use crate::config::HlsConfig;
use crate::error::HlsError;
use crate::project::{self, HlsProject};
use crate::templates;
use bnn_quant::schedule::{PlanSchedule, ScheduleOp, ScheduleStep, MUL_FRAC};
use bnn_quant::{CalibratedNetwork, QuantError, QuantParams};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The static schedule of an emitted design: the op/buffer/parameter counts
/// a synthesis-free cross-check can compare against the `bnn-hw`
/// latency/resource model and the plan's own cost accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticSchedule {
    /// Number of pipeline stages (flattened steps) in the emitted `top()`.
    pub steps: usize,
    /// Per-sample multiply-accumulates of the conv/dense stages — must
    /// equal what `bnn_hw::layer_model` prices for the same spec.
    pub macs: u64,
    /// Per-sample integer ops over every stage (the plan's `fixed_cost`
    /// unit).
    pub unit_ops: u64,
    /// Per-sample activation buffer elements (the plan's arena capacity).
    pub buffer_elems: usize,
    /// Emitted parameters: weight codes + biases + affine constants.
    pub weight_params: usize,
    /// Longest stage chain one input flows through (backbone + deepest
    /// exit).
    pub pipeline_depth: usize,
}

/// An HLS project generated from the lowered graph: the emitted files plus
/// the schedule they were rendered from. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredDesign {
    project: HlsProject,
    schedule: PlanSchedule,
    summary: StaticSchedule,
}

/// Name and calibrated format of the value currently held by an arena slot
/// during the emission walk.
#[derive(Clone)]
struct SlotValue {
    name: String,
    params: QuantParams,
}

impl LoweredDesign {
    /// Compiles `calibrated` at `config.format` and emits the design.
    ///
    /// # Errors
    ///
    /// Returns [`HlsError::Unsupported`] when the network contains a
    /// lowering node with no emission rule or the format is wider than the
    /// 16-bit integer path; other plan-compilation failures surface as
    /// [`HlsError::Quant`].
    pub fn generate(calibrated: &CalibratedNetwork, config: &HlsConfig) -> Result<Self, HlsError> {
        let plan = calibrated.plan(config.format).map_err(|e| match e {
            QuantError::Unsupported(msg) => HlsError::Unsupported(msg),
            other => HlsError::Quant(other),
        })?;
        Self::from_schedule(plan.schedule(), config)
    }

    /// Emits the design from an already-exported schedule.
    ///
    /// # Errors
    ///
    /// Returns [`HlsError::InvalidConfig`] for an empty project name.
    pub fn from_schedule(schedule: PlanSchedule, config: &HlsConfig) -> Result<Self, HlsError> {
        if config.project_name.is_empty() {
            return Err(HlsError::InvalidConfig("empty project name".into()));
        }
        let emitter = Emitter::walk(&schedule, config);
        let name = config.project_name.clone();
        let mut files = BTreeMap::new();
        files.insert(format!("firmware/{name}.cpp"), emitter.top_cpp(&schedule));
        files.insert(format!("firmware/{name}.h"), emitter.top_header(&schedule));
        files.insert("firmware/defines.h".into(), emitter.defines(&schedule));
        files.insert("firmware/parameters.h".into(), emitter.parameters.clone());
        files.insert("firmware/weights/weights.h".into(), emitter.weights.clone());
        files.insert(
            "firmware/nnet_utils/nnet_mc_dropout.h".into(),
            templates::mc_dropout_header(config),
        );
        files.insert("build_prj.tcl".into(), project::build_tcl(config));
        files.insert("README.md".into(), emitter.readme(&schedule));

        let summary = StaticSchedule {
            steps: schedule.num_steps(),
            macs: schedule.total_macs(),
            unit_ops: schedule.total_unit_ops(),
            buffer_elems: schedule.buffer_elems(),
            weight_params: schedule.weight_params(),
            pipeline_depth: schedule.pipeline_depth(),
        };
        Ok(LoweredDesign {
            project: HlsProject::from_files(name, files),
            schedule,
            summary,
        })
    }

    /// The emitted file set.
    pub fn project(&self) -> &HlsProject {
        &self.project
    }

    /// The schedule the design was rendered from (the golden simulator's
    /// input).
    pub fn schedule(&self) -> &PlanSchedule {
        &self.schedule
    }

    /// Op/buffer/parameter counts of the emitted pipeline.
    pub fn summary(&self) -> &StaticSchedule {
        &self.summary
    }
}

/// Renders `ap_fixed<W,I>` for a calibrated per-tensor format.
fn ap_fixed(params: QuantParams) -> String {
    format!(
        "ap_fixed<{},{}>",
        params.format().total_bits(),
        params.format().integer_bits()
    )
}

/// Writes `static const {ty} {name}[{n}] = {...};` with 16 values per line.
fn int_array<I>(out: &mut String, ty: &str, name: &str, values: I)
where
    I: ExactSizeIterator<Item = i64>,
{
    let n = values.len();
    let _ = write!(out, "static const {ty} {name}[{n}] = {{");
    for (i, v) in values.enumerate() {
        if i % 16 == 0 {
            out.push_str("\n    ");
        } else {
            out.push(' ');
        }
        let _ = write!(out, "{v},");
    }
    out.push_str("\n};\n");
}

/// One rendered pipeline stage: the call line plus its destination buffer.
struct Stage {
    comment: String,
    decl: Option<String>,
    call: String,
}

/// The emission walk: renders parameters.h / weights.h bodies and the
/// per-stage call list while tracking which value each arena slot holds.
struct Emitter {
    config: HlsConfig,
    /// `(flat index, typedef line)` per value, input first.
    typedefs: Vec<String>,
    parameters: String,
    weights: String,
    /// Stages of the backbone segment.
    backbone: Vec<Stage>,
    /// Stages per exit, plus the exit's output buffer name and type.
    exits: Vec<(Vec<Stage>, String, String)>,
    weight_bits: u32,
}

impl Emitter {
    fn walk(schedule: &PlanSchedule, config: &HlsConfig) -> Self {
        let mut e = Emitter {
            config: config.clone(),
            typedefs: Vec::new(),
            parameters: String::from(
                "#ifndef PARAMETERS_H_\n#define PARAMETERS_H_\n\n#include \"defines.h\"\n#include \"weights/weights.h\"\n\n",
            ),
            weights: String::from(
                "#ifndef WEIGHTS_H_\n#define WEIGHTS_H_\n\n#include \"../defines.h\"\n\n",
            ),
            backbone: Vec::new(),
            exits: Vec::new(),
            weight_bits: schedule.format.total_bits(),
        };
        e.typedefs.push(format!(
            "typedef {} input_t; // calibrated input, scale 2^-{}",
            ap_fixed(schedule.in_params),
            schedule.in_params.fractional_bits()
        ));

        let mut owner: Vec<Option<SlotValue>> = vec![None; schedule.slot_elems.len()];
        owner[schedule.input_slot] = Some(SlotValue {
            name: "input".into(),
            params: schedule.in_params,
        });

        let mut k = 0usize;
        let mut stages = Vec::new();
        for step in &schedule.backbone {
            stages.push(e.emit_step(k, step, &mut owner));
            k += 1;
        }
        e.backbone = stages;
        for exit in &schedule.exits {
            let mut stages = Vec::new();
            for step in &exit.steps {
                stages.push(e.emit_step(k, step, &mut owner));
                k += 1;
            }
            let out = owner[exit.out_slot]
                .clone()
                .expect("exit output slot holds a value after its steps");
            e.exits
                .push((stages, out.name.clone(), format!("{}_t", out.name)));
        }
        let _ = writeln!(e.parameters, "#endif");
        let total: usize = schedule.weight_params();
        let _ = writeln!(
            e.weights,
            "// total parameters: {total} (integer codes; scales are powers of two)\n#endif"
        );
        e
    }

    /// Emits one step: typedef for its output value, config struct, weight
    /// arrays and the call line; updates the slot ownership map.
    fn emit_step(
        &mut self,
        k: usize,
        step: &ScheduleStep,
        owner: &mut [Option<SlotValue>],
    ) -> Stage {
        let src = owner[step.src]
            .clone()
            .expect("step source slot holds a value");
        let src2 = step
            .src2
            .map(|s| owner[s].clone().expect("merge shortcut slot holds a value"));
        let out_params = step.op.out_params().unwrap_or(src.params);
        let name = format!("v{k}");
        let ty = format!("v{k}_t");
        let elems: usize = step.out_dims.iter().product();
        self.typedefs.push(format!(
            "typedef {} {ty}; // step {k} {} out, scale 2^-{}",
            ap_fixed(out_params),
            step.op.name(),
            out_params.fractional_bits()
        ));

        let comment = format!(
            "// step {k}: {} {:?} -> {:?}",
            step.op.name(),
            step.in_dims,
            step.out_dims
        );
        let decl = Some(format!("    {ty} {name}[{elems}];"));
        let reuse = self.config.reuse_factor;
        let wbits = self.weight_bits;
        let src_t = format!("{}_t", src.name);
        let src_ty = if src.name == "input" {
            "input_t".to_string()
        } else {
            src_t
        };

        let mut cfg = format!("// step {k}: {}\nstruct config{k} {{\n", step.op.name());
        let call = match &step.op {
            ScheduleOp::Conv {
                weights,
                bias,
                out_c,
                in_c,
                kernel,
                stride,
                padding,
                shift,
                w_frac,
                out: _,
            } => {
                let (in_h, in_w) = (step.in_dims[1], step.in_dims[2]);
                let (out_h, out_w) = (step.out_dims[1], step.out_dims[2]);
                let acc_frac = w_frac + src.params.fractional_bits();
                let _ = writeln!(self.weights, "// step {k}: conv2d weights [out_c={out_c}, in_c*k*k={}], scale 2^-{w_frac}; bias scale 2^-{acc_frac}",
                    in_c * kernel * kernel
                );
                int_array(
                    &mut self.weights,
                    &format!("ap_int<{wbits}>"),
                    &format!("w{k}"),
                    weights.iter().map(|&w| w as i64),
                );
                int_array(
                    &mut self.weights,
                    "ap_int<48>",
                    &format!("b{k}"),
                    bias.iter().copied(),
                );
                self.weights.push('\n');
                let _ = writeln!(cfg, "    static const unsigned in_c = {in_c};\n    static const unsigned out_c = {out_c};\n    static const unsigned kernel = {kernel};\n    static const unsigned stride = {stride};\n    static const unsigned padding = {padding};\n    static const unsigned in_h = {in_h};\n    static const unsigned in_w = {in_w};\n    static const unsigned out_h = {out_h};\n    static const unsigned out_w = {out_w};\n    static const int requant_shift = {shift};\n    static const unsigned reuse_factor = {reuse};",
                );
                format!(
                    "    nnet::conv2d<{src_ty}, {ty}, config{k}>({}, {name}, w{k}, b{k});",
                    src.name
                )
            }
            ScheduleOp::Dense {
                weights_t,
                bias,
                in_f,
                out_f,
                shift,
                w_frac,
                out: _,
            } => {
                let acc_frac = w_frac + src.params.fractional_bits();
                let _ = writeln!(self.weights, "// step {k}: dense weights transposed [out_f={out_f}, in_f={in_f}], scale 2^-{w_frac}; bias scale 2^-{acc_frac}",
                );
                int_array(
                    &mut self.weights,
                    &format!("ap_int<{wbits}>"),
                    &format!("w{k}"),
                    weights_t.iter().map(|&w| w as i64),
                );
                int_array(
                    &mut self.weights,
                    "ap_int<48>",
                    &format!("b{k}"),
                    bias.iter().copied(),
                );
                self.weights.push('\n');
                let _ = writeln!(cfg, "    static const unsigned in_f = {in_f};\n    static const unsigned out_f = {out_f};\n    static const int requant_shift = {shift};\n    static const unsigned reuse_factor = {reuse};",
                );
                format!(
                    "    nnet::dense<{src_ty}, {ty}, config{k}>({}, {name}, w{k}, b{k});",
                    src.name
                )
            }
            ScheduleOp::Relu => {
                let n: usize = step.in_dims.iter().product();
                let _ = writeln!(cfg, "    static const unsigned n_elems = {n};");
                format!("    nnet::relu<{src_ty}, config{k}>({}, {name});", src.name)
            }
            ScheduleOp::MaxPool { kernel, stride } | ScheduleOp::AvgPool { kernel, stride } => {
                let (c, in_h, in_w) = (step.in_dims[0], step.in_dims[1], step.in_dims[2]);
                let (out_h, out_w) = (step.out_dims[1], step.out_dims[2]);
                let _ = writeln!(cfg, "    static const unsigned channels = {c};\n    static const unsigned in_h = {in_h};\n    static const unsigned in_w = {in_w};\n    static const unsigned out_h = {out_h};\n    static const unsigned out_w = {out_w};\n    static const unsigned kernel = {kernel};\n    static const unsigned stride = {stride};",
                );
                let f = if matches!(step.op, ScheduleOp::MaxPool { .. }) {
                    "max_pool2d"
                } else {
                    "avg_pool2d"
                };
                format!("    nnet::{f}<{src_ty}, config{k}>({}, {name});", src.name)
            }
            ScheduleOp::GlobalAvgPool => {
                let (c, in_h, in_w) = (step.in_dims[0], step.in_dims[1], step.in_dims[2]);
                let _ = writeln!(cfg, "    static const unsigned channels = {c};\n    static const unsigned in_h = {in_h};\n    static const unsigned in_w = {in_w};",
                );
                format!(
                    "    nnet::global_avg_pool2d<{src_ty}, config{k}>({}, {name});",
                    src.name
                )
            }
            ScheduleOp::Affine { m, b, out: _ } => {
                let (c, plane) = (step.in_dims[0], step.in_dims[1] * step.in_dims[2]);
                let _ = writeln!(
                    self.weights,
                    "// step {k}: affine multipliers/offsets, scale 2^-{MUL_FRAC}",
                );
                int_array(
                    &mut self.weights,
                    "ap_int<48>",
                    &format!("m{k}"),
                    m.iter().copied(),
                );
                int_array(
                    &mut self.weights,
                    "ap_int<48>",
                    &format!("c{k}"),
                    b.iter().copied(),
                );
                self.weights.push('\n');
                let _ = writeln!(cfg, "    static const unsigned channels = {c};\n    static const unsigned plane = {plane};\n    static const unsigned mul_frac = {MUL_FRAC};",
                );
                format!(
                    "    nnet::affine<{src_ty}, {ty}, config{k}>({}, {name}, m{k}, c{k});",
                    src.name
                )
            }
            ScheduleOp::McDropout {
                rate,
                scale_q,
                params: _,
            } => {
                let n: usize = step.in_dims.iter().product();
                let (filters, plane) = if step.in_dims.len() == 3 {
                    (step.in_dims[0], step.in_dims[1] * step.in_dims[2])
                } else {
                    (n, 1)
                };
                let _ = writeln!(cfg, "    static const unsigned n_elems = {n};\n    static const unsigned filters = {filters};\n    static const unsigned plane = {plane};\n    // dropout rate {rate}; kept values scale by scale_q * 2^-{MUL_FRAC}\n    static const ap_uint<48> scale_q = {scale_q};\n    static const unsigned mul_frac = {MUL_FRAC};",
                );
                format!(
                    "    nnet::mc_dropout<{src_ty}, config{k}>({}, {name});",
                    src.name
                )
            }
            ScheduleOp::Merge {
                m_shift,
                s_shift,
                out: _,
            } => {
                let short = src2.as_ref().expect("merge has a shortcut source");
                let short_ty = format!("{}_t", short.name);
                let n: usize = step.out_dims.iter().product();
                let _ = writeln!(cfg, "    static const unsigned n_elems = {n};\n    static const int main_shift = {m_shift};\n    static const int shortcut_shift = {s_shift};",
                );
                format!(
                    "    nnet::residual_merge<{src_ty}, {short_ty}, {ty}, config{k}>({}, {}, {name});",
                    src.name, short.name
                )
            }
        };
        cfg.push_str("};\n\n");
        self.parameters.push_str(&cfg);

        owner[step.dst] = Some(SlotValue {
            name,
            params: out_params,
        });
        Stage {
            comment,
            decl,
            call,
        }
    }

    fn defines(&self, schedule: &PlanSchedule) -> String {
        let mut out = String::from(
            "#ifndef DEFINES_H_\n#define DEFINES_H_\n\n#include \"ap_fixed.h\"\n#include \"ap_int.h\"\n\n// Per-tensor calibrated fixed-point formats (one typedef per value).\n",
        );
        for t in &self.typedefs {
            out.push_str(t);
            out.push('\n');
        }
        out.push('\n');
        for (e, (_, out_name, out_ty)) in self.exits.iter().enumerate() {
            let _ = writeln!(
                out,
                "typedef {out_ty} exit{e}_out_t; // logits of exit {e} ({out_name})"
            );
        }
        let input_size: usize = schedule.in_dims.iter().product();
        let _ = writeln!(out, "\n#define NUM_EXITS {}\n#define MC_SAMPLES {}\n#define N_CLASSES {}\n#define INPUT_SIZE {}\n#define NUM_SLOTS {}\n#define ARENA_ELEMS {}\n\n#endif",
            schedule.exits.len(),
            self.config.mc_samples,
            schedule.classes,
            input_size,
            schedule.slot_elems.len(),
            schedule.buffer_elems(),
        );
        out
    }

    fn signature(&self, name: &str) -> String {
        let mut sig = format!("void {name}(\n    const input_t input[INPUT_SIZE]");
        for (e, _) in self.exits.iter().enumerate() {
            let _ = write!(sig, ",\n    exit{e}_out_t exit{e}_logits[N_CLASSES]");
        }
        sig.push_str("\n)");
        sig
    }

    fn top_cpp(&self, schedule: &PlanSchedule) -> String {
        let name = &self.config.project_name;
        let mut body = String::new();
        body.push_str("\n    // ---- backbone ----\n");
        for stage in &self.backbone {
            let _ = writeln!(body, "    {}", stage.comment);
            if let Some(decl) = &stage.decl {
                let _ = writeln!(body, "{decl}");
            }
            let _ = writeln!(body, "{}", stage.call);
        }
        for (e, (stages, out_name, _)) in self.exits.iter().enumerate() {
            let after = schedule.exits[e].after_block;
            let _ = writeln!(body, "\n    // ---- exit {e} (after block {after}) ----");
            for stage in stages {
                let _ = writeln!(body, "    {}", stage.comment);
                if let Some(decl) = &stage.decl {
                    let _ = writeln!(body, "{decl}");
                }
                let _ = writeln!(body, "{}", stage.call);
            }
            let _ = writeln!(
                body,
                "    nnet::write_logits<exit{e}_out_t, N_CLASSES>({out_name}, exit{e}_logits);"
            );
        }
        format!(
            r#"// Auto-generated by the bnn-hls transformation framework (Phase 4,
// lowered-graph backend). Every call below mirrors one step of the compiled
// integer plan; bnn_hls::sim interprets the same schedule as the golden
// C-simulation reference.
#include "{name}.h"
#include "parameters.h"
#include "nnet_utils/nnet_mc_dropout.h"

{sig} {{
#pragma HLS INTERFACE bram port=input
#pragma HLS DATAFLOW
{body}}}
"#,
            sig = self.signature(name),
        )
    }

    fn top_header(&self, schedule: &PlanSchedule) -> String {
        let name = &self.config.project_name;
        format!(
            r#"#ifndef {upper}_H_
#define {upper}_H_

#include "ap_fixed.h"
#include "defines.h"

// Lowered-graph design: {steps} pipeline steps, {exits} exit(s),
// {params} parameters, {elems} activation buffer elements.
{sig};

#endif
"#,
            upper = name.to_uppercase(),
            steps = schedule.num_steps(),
            exits = schedule.exits.len(),
            params = schedule.weight_params(),
            elems = schedule.buffer_elems(),
            sig = self.signature(name),
        )
    }

    fn readme(&self, schedule: &PlanSchedule) -> String {
        format!(
            "# {name}\n\nHLS project generated from the **lowered graph**: the pipeline below is\nthe flattened step list the compiled integer plan executes, with one\ncalibrated `ap_fixed<W,I>` type per tensor and the packed integer\nweight/bias codes the plan multiplies by.\n\n* Global format: `{ty}` (per-tensor splits in `firmware/defines.h`)\n* Pipeline steps: {steps} ({exits} exits; depth {depth})\n* Per-sample MACs: {macs}\n* Parameters: {params}\n* Activation buffer elements: {elems}\n* Reuse factor: {reuse}\n* Clock period: {period} ns\n* MC samples: {samples}\n\n`bnn_hls::sim::HlsSimulator` interprets this design's schedule in pure\nRust integer arithmetic, bit-exact with `QuantPlan::predict_probs` — the\nC-simulation golden reference. Run `vivado_hls -f build_prj.tcl` to\nsynthesise.\n",
            name = self.config.project_name,
            ty = self.config.cpp_type(),
            steps = schedule.num_steps(),
            exits = schedule.exits.len(),
            depth = schedule.pipeline_depth(),
            macs = schedule.total_macs(),
            params = schedule.weight_params(),
            elems = schedule.buffer_elems(),
            reuse = self.config.reuse_factor,
            period = self.config.clock_period_ns,
            samples = self.config.mc_samples,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnn_models::{zoo, ModelConfig};
    use bnn_quant::FixedPointFormat;
    use bnn_tensor::rng::Xoshiro256StarStar;
    use bnn_tensor::Tensor;

    fn calibrated() -> CalibratedNetwork {
        let net = zoo::lenet5(
            &ModelConfig::mnist()
                .with_resolution(10, 10)
                .with_width_divisor(8)
                .with_classes(4),
        )
        .with_exits_after_every_block()
        .unwrap()
        .with_exit_mcd(0.25)
        .unwrap()
        .build(3)
        .unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let calib = Tensor::randn(&[6, 1, 10, 10], &mut rng);
        CalibratedNetwork::calibrate(&net, &calib).unwrap()
    }

    #[test]
    fn lowered_design_emits_per_tensor_types_and_integer_weights() {
        let calibrated = calibrated();
        let config =
            HlsConfig::new("lenet_lowered").with_format(FixedPointFormat::new(8, 3).unwrap());
        let design = LoweredDesign::generate(&calibrated, &config).unwrap();
        let defines = design.project().file("firmware/defines.h").unwrap();
        assert!(defines.contains("typedef ap_fixed<8,"));
        assert!(defines.contains("input_t"));
        assert!(defines.contains("v0_t"));
        assert!(defines.contains("exit0_out_t"));
        assert!(defines.contains("#define NUM_EXITS 2"));

        let weights = design.project().file("firmware/weights/weights.h").unwrap();
        assert!(weights.contains("ap_int<8> w0["));
        assert!(weights.contains("ap_int<48> b0["));
        // Integer codes, not float literals: no decimal points in arrays.
        assert!(weights.contains("scale 2^-"));

        let cpp = design.project().file("firmware/lenet_lowered.cpp").unwrap();
        assert!(cpp.contains("#pragma HLS DATAFLOW"));
        assert!(cpp.contains("nnet::conv2d<input_t, v0_t, config0>"));
        assert!(cpp.contains("// ---- exit 0"));
        assert!(cpp.contains("nnet::write_logits<exit0_out_t, N_CLASSES>"));
        assert_eq!(
            cpp.matches("nnet::").count() - design.schedule().exits.len(),
            design.summary().steps
        );
    }

    #[test]
    fn summary_matches_schedule_totals() {
        let calibrated = calibrated();
        let config = HlsConfig::new("p").with_format(FixedPointFormat::new(8, 3).unwrap());
        let design = LoweredDesign::generate(&calibrated, &config).unwrap();
        let s = design.schedule();
        assert_eq!(design.summary().steps, s.num_steps());
        assert_eq!(design.summary().macs, s.total_macs());
        assert_eq!(design.summary().buffer_elems, s.buffer_elems());
        assert!(design.summary().macs > 0);
        assert!(design.summary().pipeline_depth <= design.summary().steps);
    }

    #[test]
    fn wide_format_is_a_typed_unsupported_error() {
        let calibrated = calibrated();
        let config = HlsConfig::new("p").with_format(FixedPointFormat::new(24, 8).unwrap());
        match LoweredDesign::generate(&calibrated, &config) {
            Err(HlsError::Unsupported(msg)) => assert!(msg.contains("16")),
            other => panic!("expected HlsError::Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn empty_project_name_is_rejected() {
        let calibrated = calibrated();
        let config = HlsConfig::new("").with_format(FixedPointFormat::new(8, 3).unwrap());
        assert!(matches!(
            LoweredDesign::generate(&calibrated, &config),
            Err(HlsError::InvalidConfig(_))
        ));
    }
}
