//! Error type for HLS code generation.

use bnn_models::ModelError;
use bnn_quant::QuantError;
use std::error::Error;
use std::fmt;

/// Error returned by the HLS project generator.
#[derive(Debug, Clone, PartialEq)]
pub enum HlsError {
    /// The architecture spec could not be analysed.
    Model(ModelError),
    /// The fixed-point configuration is invalid.
    Quant(QuantError),
    /// The generator configuration is invalid.
    InvalidConfig(String),
    /// A lowered node (or the requested format) has no HLS emission rule —
    /// e.g. a layer without an inference lowering or a format wider than the
    /// 16-bit integer path. Raised instead of silently falling back to the
    /// global-width emitter.
    Unsupported(String),
    /// The golden-reference simulator rejected its input (shape mismatch,
    /// empty batch, or a design without exits).
    Sim(String),
    /// Writing the project to disk failed.
    Io(String),
}

impl fmt::Display for HlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlsError::Model(e) => write!(f, "model error: {e}"),
            HlsError::Quant(e) => write!(f, "quantization error: {e}"),
            HlsError::InvalidConfig(msg) => write!(f, "invalid HLS configuration: {msg}"),
            HlsError::Unsupported(msg) => write!(f, "no HLS emission rule: {msg}"),
            HlsError::Sim(msg) => write!(f, "HLS golden simulation error: {msg}"),
            HlsError::Io(msg) => write!(f, "failed to write HLS project: {msg}"),
        }
    }
}

impl Error for HlsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HlsError::Model(e) => Some(e),
            HlsError::Quant(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for HlsError {
    fn from(e: ModelError) -> Self {
        HlsError::Model(e)
    }
}

impl From<QuantError> for HlsError {
    fn from(e: QuantError) -> Self {
        HlsError::Quant(e)
    }
}

impl From<std::io::Error> for HlsError {
    fn from(e: std::io::Error) -> Self {
        HlsError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(HlsError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
        assert!(HlsError::Io("y".into()).to_string().contains("y"));
        let e = HlsError::Unsupported("exotic_layer".into());
        assert!(e.to_string().contains("no HLS emission rule"));
        assert!(e.to_string().contains("exotic_layer"));
        assert!(HlsError::Sim("empty batch".into())
            .to_string()
            .contains("empty batch"));
        let e = HlsError::from(ModelError::InvalidSpec("z".into()));
        assert!(e.source().is_some());
        let e = HlsError::from(QuantError::InvalidFormat("q".into()));
        assert!(e.source().is_some());
    }
}
