//! # bnn-hls
//!
//! HLS C++ code generation for multi-exit MCD BayesNN accelerators — the
//! Phase 4 backend of the transformation framework.
//!
//! The generator follows the hls4ml project layout the paper builds on: a
//! top-level dataflow function, a `defines.h` with the fixed-point types and
//! layer dimensions, a `parameters.h` with per-layer configuration structs, a
//! weights header, the custom `nnet_mc_dropout.h` template implementing the
//! paper's Algorithm 1 (pipelined elementwise loop, on-chip LFSR uniform RNG,
//! keep-rate comparator and multiplier), and a `build_prj.tcl` script that
//! would drive Vivado-HLS C-synthesis.
//!
//! Because Vivado-HLS itself is unavailable in this environment, the emitted
//! project is validated structurally (tests check the presence of the
//! dataflow/pipeline pragmas, one instantiation per layer, correct fixed-point
//! widths) and its performance is predicted by `bnn-hw` instead of a
//! C-synthesis report.
//!
//! # Relation to the integer inference path
//!
//! The `ap_fixed<W, I>` types this generator writes into `defines.h` are the
//! hardware spelling of the arithmetic `bnn_quant::net` executes in
//! software since PR 4: symmetric power-of-two grids, wide exact
//! accumulation, round-to-nearest requantization and saturation. The
//! software integer path therefore doubles as the C-simulation reference a
//! real HLS flow would diff its RTL against — a design point whose accuracy
//! Phase 3 measured on the integer path is the design point this crate
//! emits.
//!
//! Two generators coexist:
//!
//! * [`HlsProject::generate`] renders from the architecture spec with one
//!   global `data_t` — the quick, calibration-free structural view.
//! * [`LoweredDesign::generate`] (module [`lowered`]) renders from a
//!   calibrated network's compiled [`bnn_quant::QuantPlan`]: one
//!   `ap_fixed<W,I>` typedef **per tensor**, the packed integer weight/bias
//!   codes, and a `top()` generated from the identical flattened step list
//!   the integer path executes. [`sim::HlsSimulator`] interprets that
//!   emitted schedule in pure Rust integer arithmetic, bit-exact with
//!   [`bnn_quant::QuantPlan::predict_probs`] — the golden reference the
//!   differential tests pin codegen against.
//!
//! One deliberate difference, documented in the dropout template: the
//! paper's Algorithm 1 scales kept activations by `keep_rate` in hardware,
//! while the software layers use inverted dropout (`1/keep_rate`); the
//! ratio is a static per-layer constant the generator folds into the
//! following layer.
//!
//! # Example: generate a project
//!
//! ```
//! use bnn_hls::{HlsConfig, HlsProject};
//! use bnn_models::{zoo, ModelConfig};
//!
//! # fn main() -> Result<(), bnn_hls::HlsError> {
//! let spec = zoo::lenet5(&ModelConfig::mnist().with_width_divisor(4))
//!     .with_mcd_layers(1, 0.25)?;
//! let project = HlsProject::generate(&spec, &HlsConfig::new("bayes_lenet"))?;
//! assert!(project.file("firmware/bayes_lenet.cpp").is_some());
//! # Ok(())
//! # }
//! ```
//!
//! # Example: the emitted fixed-point width follows the Phase 3 format
//!
//! ```
//! use bnn_hls::{HlsConfig, HlsProject};
//! use bnn_models::{zoo, ModelConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = zoo::lenet5(&ModelConfig::mnist().with_width_divisor(4))
//!     .with_mcd_layers(1, 0.25)?;
//! // An 8-bit Phase 3 winner becomes an ap_fixed<8,3> datapath.
//! let format = bnn_quant::FixedPointFormat::new(8, 3)?;
//! let config = HlsConfig::new("bayes_lenet").with_format(format);
//! let project = HlsProject::generate(&spec, &config)?;
//! let defines = project.file("firmware/defines.h").unwrap();
//! assert!(defines.contains("ap_fixed<8,3>"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod lowered;
pub mod project;
pub mod sim;
pub mod templates;

pub use config::HlsConfig;
pub use error::HlsError;
pub use lowered::{LoweredDesign, StaticSchedule};
pub use project::HlsProject;
pub use sim::{HlsSimulator, SimMode};
