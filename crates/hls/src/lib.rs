//! # bnn-hls
//!
//! HLS C++ code generation for multi-exit MCD BayesNN accelerators — the
//! Phase 4 backend of the transformation framework.
//!
//! The generator follows the hls4ml project layout the paper builds on: a
//! top-level dataflow function, a `defines.h` with the fixed-point types and
//! layer dimensions, a `parameters.h` with per-layer configuration structs, a
//! weights header, the custom `nnet_mc_dropout.h` template implementing the
//! paper's Algorithm 1 (pipelined elementwise loop, on-chip LFSR uniform RNG,
//! keep-rate comparator and multiplier), and a `build_prj.tcl` script that
//! would drive Vivado-HLS C-synthesis.
//!
//! Because Vivado-HLS itself is unavailable in this environment, the emitted
//! project is validated structurally (tests check the presence of the
//! dataflow/pipeline pragmas, one instantiation per layer, correct fixed-point
//! widths) and its performance is predicted by `bnn-hw` instead of a
//! C-synthesis report.
//!
//! # Example
//!
//! ```
//! use bnn_hls::{HlsConfig, HlsProject};
//! use bnn_models::{zoo, ModelConfig};
//!
//! # fn main() -> Result<(), bnn_hls::HlsError> {
//! let spec = zoo::lenet5(&ModelConfig::mnist().with_width_divisor(4))
//!     .with_mcd_layers(1, 0.25)?;
//! let project = HlsProject::generate(&spec, &HlsConfig::new("bayes_lenet"))?;
//! assert!(project.file("firmware/bayes_lenet.cpp").is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod project;
pub mod templates;

pub use config::HlsConfig;
pub use error::HlsError;
pub use project::HlsProject;
