//! HLS project generation configuration.

use bnn_hw::MappingStrategy;
use bnn_quant::FixedPointFormat;

/// Configuration of an HLS project generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct HlsConfig {
    /// Project (and top-level function) name.
    pub project_name: String,
    /// Fixed-point format of weights and activations.
    pub format: FixedPointFormat,
    /// Reuse factor applied to every layer.
    pub reuse_factor: usize,
    /// Target clock period in nanoseconds.
    pub clock_period_ns: f64,
    /// Target FPGA part string.
    pub part: String,
    /// Mapping of MC passes onto engines (controls how many MC engines the top
    /// function instantiates).
    pub mapping: MappingStrategy,
    /// Number of MC samples the accelerator produces per input.
    pub mc_samples: usize,
}

impl HlsConfig {
    /// Creates a configuration with the paper's defaults: `ap_fixed<16,6>`,
    /// reuse factor 32, 5.5 ns clock (≈181 MHz), XCKU115 part, temporal mapping,
    /// 3 MC samples.
    pub fn new(project_name: impl Into<String>) -> Self {
        HlsConfig {
            project_name: project_name.into(),
            format: FixedPointFormat::default_hls(),
            reuse_factor: 32,
            clock_period_ns: 5.5,
            part: "xcku115-flvb2104-2-e".into(),
            mapping: MappingStrategy::Temporal,
            mc_samples: 3,
        }
    }

    /// Sets the fixed-point format.
    pub fn with_format(mut self, format: FixedPointFormat) -> Self {
        self.format = format;
        self
    }

    /// Sets the reuse factor.
    pub fn with_reuse_factor(mut self, reuse_factor: usize) -> Self {
        self.reuse_factor = reuse_factor.max(1);
        self
    }

    /// Sets the mapping strategy.
    pub fn with_mapping(mut self, mapping: MappingStrategy) -> Self {
        self.mapping = mapping;
        self
    }

    /// Sets the number of MC samples.
    pub fn with_mc_samples(mut self, mc_samples: usize) -> Self {
        self.mc_samples = mc_samples.max(1);
        self
    }

    /// The `ap_fixed<W,I>` C++ type string for this configuration.
    pub fn cpp_type(&self) -> String {
        format!(
            "ap_fixed<{},{}>",
            self.format.total_bits(),
            self.format.integer_bits()
        )
    }

    /// Clock frequency in MHz implied by the clock period.
    pub fn clock_mhz(&self) -> f64 {
        1e3 / self.clock_period_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let cfg = HlsConfig::new("bayes_lenet");
        assert_eq!(cfg.cpp_type(), "ap_fixed<16,6>");
        assert_eq!(cfg.reuse_factor, 32);
        assert!((cfg.clock_mhz() - 181.8).abs() < 1.0);
        assert!(cfg.part.contains("xcku115"));
        assert_eq!(cfg.mc_samples, 3);
    }

    #[test]
    fn builder_methods() {
        let cfg = HlsConfig::new("p")
            .with_format(FixedPointFormat::new(8, 3).unwrap())
            .with_reuse_factor(0)
            .with_mapping(MappingStrategy::Spatial)
            .with_mc_samples(0);
        assert_eq!(cfg.cpp_type(), "ap_fixed<8,3>");
        assert_eq!(cfg.reuse_factor, 1);
        assert_eq!(cfg.mapping, MappingStrategy::Spatial);
        assert_eq!(cfg.mc_samples, 1);
    }
}
