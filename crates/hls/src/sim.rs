//! Golden-reference interpreter for an emitted design's step schedule.
//!
//! [`HlsSimulator`] executes the [`PlanSchedule`] a [`LoweredDesign`] was
//! rendered from in pure Rust integer arithmetic — a second, independent
//! implementation of every op (direct convolution instead of im2row+matmul,
//! scalar loops instead of SIMD kernels, `i64` lane values throughout) with
//! its own local round-shift/saturate primitives. Its contract is
//! bit-exactness with [`QuantPlan::predict_probs`]: the differential tests
//! diff the two across every zoo model × format, so the emitted design can
//! never silently drift from the arithmetic the accelerator was scored on.
//! This is the role C-simulation plays in a real HLS flow.
//!
//! The only pieces shared with the plan are the ones that *define* the
//! sampled semantics rather than implement arithmetic: the Xoshiro mask
//! streams (assigned per MC-dropout step in flat schedule order, reseeded
//! per pass from `stream_seed(seed, pass)`) and the `f32` softmax head.
//!
//! [`LoweredDesign`]: crate::lowered::LoweredDesign
//! [`QuantPlan::predict_probs`]: bnn_quant::QuantPlan::predict_probs

use crate::error::HlsError;
use bnn_quant::schedule::{PlanSchedule, ScheduleOp, ScheduleStep, MUL_FRAC};
use bnn_tensor::ops::softmax_rows_into;
use bnn_tensor::rng::{stream_seed, Rng, SplitMix64, Xoshiro256StarStar};
use bnn_tensor::Tensor;

/// Execution mode of a simulated pass — the simulator's own spelling of the
/// deterministic/sampling distinction so it does not depend on `bnn-nn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Deterministic: MC-dropout stages copy through and draw nothing.
    Eval,
    /// One Monte-Carlo sample: MC-dropout stages draw Bernoulli masks from
    /// their streams and scale kept values by `scale_q >> MUL_FRAC`.
    McSample,
}

/// Rounds `value / 2^shift` with ties away from zero — the simulator's own
/// copy of the fixed-point rounding rule (`AP_RND` in `ap_fixed` terms).
fn round_shift(value: i64, shift: u32) -> i64 {
    if shift == 0 {
        return value;
    }
    let bias = 1i64 << (shift - 1);
    if value >= 0 {
        (value + bias) >> shift
    } else {
        -((-value + bias) >> shift)
    }
}

/// Requantizes an accumulator: rounding right shift (or saturating scale-up
/// for negative shifts), then clamp into `[qmin, qmax]` (`AP_SAT`).
fn requant(value: i64, shift: i32, qmin: i64, qmax: i64) -> i64 {
    let scaled = if shift >= 0 {
        round_shift(value, shift as u32)
    } else {
        value.saturating_mul(1i64 << (-shift).min(62))
    };
    scaled.clamp(qmin, qmax)
}

/// Divides with round-half-away-from-zero (the average-pool divisor rule).
fn div_round(n: i64, d: i64) -> i64 {
    if n >= 0 {
        (2 * n + d) / (2 * d)
    } else {
        -((-2 * n + d) / (2 * d))
    }
}

/// Interprets a [`PlanSchedule`] in pure Rust integer arithmetic. See the
/// [module docs](self).
///
/// # Example
///
/// ```
/// use bnn_hls::{HlsConfig, LoweredDesign, HlsSimulator};
/// use bnn_models::{zoo, ModelConfig};
/// use bnn_quant::{CalibratedNetwork, FixedPointFormat};
/// use bnn_tensor::rng::Xoshiro256StarStar;
/// use bnn_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = zoo::lenet5(&ModelConfig::mnist().with_resolution(10, 10).with_width_divisor(8))
///     .with_exits_after_every_block()?
///     .with_exit_mcd(0.25)?;
/// let net = spec.build(3)?;
/// let mut rng = Xoshiro256StarStar::seed_from_u64(4);
/// let calib = Tensor::randn(&[6, 1, 10, 10], &mut rng);
/// let calibrated = CalibratedNetwork::calibrate(&net, &calib)?;
///
/// let format = FixedPointFormat::new(8, 3)?;
/// let config = HlsConfig::new("lenet").with_format(format);
/// let design = LoweredDesign::generate(&calibrated, &config)?;
/// let mut sim = HlsSimulator::new(design.schedule().clone());
///
/// // Bit-exact with QuantPlan::predict_probs at the same seed.
/// let x = Tensor::randn(&[2, 1, 10, 10], &mut rng);
/// let probs = sim.predict_probs(&x, 4, 2023)?;
/// let mut plan = calibrated.plan(format)?;
/// let reference = plan.predict_probs(&x, 4, 2023)?;
/// assert_eq!(probs.as_slice(), reference.as_slice());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HlsSimulator {
    schedule: PlanSchedule,
    /// Per-slot activation buffers, `batch * slot_elems[s]` lanes.
    slots: Vec<Vec<i64>>,
    /// One mask stream per MC-dropout step, in flat schedule order.
    streams: Vec<Xoshiro256StarStar>,
    batch: usize,
}

impl HlsSimulator {
    /// Builds a simulator over an emitted design's schedule.
    pub fn new(schedule: PlanSchedule) -> Self {
        let n_streams = schedule
            .steps()
            .filter(|s| matches!(s.op, ScheduleOp::McDropout { .. }))
            .count();
        HlsSimulator {
            slots: vec![Vec::new(); schedule.slot_elems.len()],
            streams: vec![Xoshiro256StarStar::seed_from_u64(0); n_streams],
            batch: 0,
            schedule,
        }
    }

    /// The schedule under simulation.
    pub fn schedule(&self) -> &PlanSchedule {
        &self.schedule
    }

    /// Reseeds every MC-dropout mask stream from `master_seed`, walking the
    /// flat step list — the identical stream assignment as
    /// `QuantPlan::reseed_mc_streams`.
    pub fn reseed_mc_streams(&mut self, master_seed: u64) {
        let mut seeds = SplitMix64::new(master_seed);
        for stream in self.streams.iter_mut() {
            *stream = Xoshiro256StarStar::seed_from_u64(seeds.next_u64());
        }
    }

    /// Quantizes the input batch into the input slot and sizes every buffer.
    fn load_input(&mut self, inputs: &Tensor) -> Result<usize, HlsError> {
        let dims = inputs.dims();
        if dims.len() != self.schedule.in_dims.len() + 1 || dims[1..] != self.schedule.in_dims[..] {
            return Err(HlsError::Sim(format!(
                "design expects input dims [batch, {:?}], got {:?}",
                self.schedule.in_dims, dims
            )));
        }
        let batch = dims[0];
        if batch == 0 {
            return Err(HlsError::Sim("empty input batch".into()));
        }
        for (slot, &elems) in self.slots.iter_mut().zip(&self.schedule.slot_elems) {
            slot.resize(batch * elems, 0);
        }
        self.batch = batch;
        let params = self.schedule.in_params;
        let slot = &mut self.slots[self.schedule.input_slot];
        for (dst, &v) in slot.iter_mut().zip(inputs.as_slice()) {
            *dst = params.quantize_value(v);
        }
        Ok(batch)
    }

    /// Runs the backbone deterministically, then every exit in `mode`,
    /// returning one integer logit buffer per exit (`batch * classes`
    /// codes at the exit's calibrated format).
    ///
    /// # Errors
    ///
    /// Returns [`HlsError::Sim`] for an input shape mismatch or empty
    /// batch.
    pub fn forward_exits(
        &mut self,
        inputs: &Tensor,
        mode: SimMode,
    ) -> Result<Vec<Vec<i64>>, HlsError> {
        let batch = self.load_input(inputs)?;
        let backbone = std::mem::take(&mut self.schedule.backbone);
        let mut stream_idx = 0usize;
        for step in &backbone {
            self.run_step(step, batch, SimMode::Eval, &mut stream_idx);
        }
        self.schedule.backbone = backbone;
        let exits = std::mem::take(&mut self.schedule.exits);
        let mut outputs = Vec::with_capacity(exits.len());
        for exit in &exits {
            for step in &exit.steps {
                self.run_step(step, batch, mode, &mut stream_idx);
            }
            let n: usize = exit.out_dims.iter().product::<usize>() * batch;
            outputs.push(self.slots[exit.out_slot][..n].to_vec());
        }
        self.schedule.exits = exits;
        Ok(outputs)
    }

    /// Seeded Monte-Carlo prediction through the emitted schedule,
    /// mirroring `QuantPlan::predict_probs` exactly: backbone once in
    /// [`SimMode::Eval`], `⌈n_samples/n_exits⌉` passes each reseeding the
    /// mask streams from `stream_seed(seed, pass)` and re-running the exits
    /// in [`SimMode::McSample`], and the first `n_samples` per-sample
    /// softmax tensors averaged into a `[batch, classes]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`HlsError::Sim`] for a design without exits, an input shape
    /// mismatch, or an empty batch.
    pub fn predict_probs(
        &mut self,
        inputs: &Tensor,
        n_samples: usize,
        seed: u64,
    ) -> Result<Tensor, HlsError> {
        let n_exits = self.schedule.exits.len();
        if n_exits == 0 {
            return Err(HlsError::Sim("design has no exits".into()));
        }
        let batch = self.load_input(inputs)?;
        let classes = self.schedule.classes;
        let backbone = std::mem::take(&mut self.schedule.backbone);
        let mut stream_idx = 0usize;
        for step in &backbone {
            self.run_step(step, batch, SimMode::Eval, &mut stream_idx);
        }
        self.schedule.backbone = backbone;
        let backbone_streams = stream_idx;

        let passes = n_samples.div_ceil(n_exits).max(1);
        let kept = if n_samples == 0 {
            passes * n_exits
        } else {
            n_samples.min(passes * n_exits)
        };
        let mut out = vec![0.0f32; batch * classes];
        let mut logits = Vec::new();
        let mut probs = Vec::new();
        let mut sample = 0usize;
        'passes: for pass in 0..passes {
            self.reseed_mc_streams(stream_seed(seed, pass as u64));
            // The backbone ran once before the pass loop; keep its streams'
            // positions aligned by skipping them (they draw nothing anyway —
            // the plan reseeds all streams but only re-runs the exits).
            let mut stream_idx = backbone_streams;
            let exits = std::mem::take(&mut self.schedule.exits);
            for exit in &exits {
                if sample >= kept {
                    self.schedule.exits = exits;
                    break 'passes;
                }
                for step in &exit.steps {
                    self.run_step(step, batch, SimMode::McSample, &mut stream_idx);
                }
                let n: usize = exit.out_dims.iter().product::<usize>() * batch;
                let scale = exit.out_params.scale();
                logits.clear();
                logits.extend(
                    self.slots[exit.out_slot][..n]
                        .iter()
                        .map(|&c| c as f32 * scale),
                );
                probs.resize(n, 0.0);
                softmax_rows_into(&logits, batch, classes, &mut probs)
                    .map_err(|e| HlsError::Sim(e.to_string()))?;
                for (o, &p) in out.iter_mut().zip(&probs) {
                    *o += p;
                }
                sample += 1;
            }
            self.schedule.exits = exits;
        }
        let inv = 1.0 / kept as f32;
        for o in out.iter_mut() {
            *o *= inv;
        }
        Tensor::from_vec(out, &[batch, classes]).map_err(|e| HlsError::Sim(e.to_string()))
    }

    /// Executes one schedule step on the slot buffers. `stream_idx` counts
    /// MC-dropout steps in flat order so each draws from its own stream.
    fn run_step(
        &mut self,
        step: &ScheduleStep,
        batch: usize,
        mode: SimMode,
        stream_idx: &mut usize,
    ) {
        let in_elems: usize = step.in_dims.iter().product::<usize>() * batch;
        let out_elems: usize = step.out_dims.iter().product::<usize>() * batch;
        match &step.op {
            ScheduleOp::Conv {
                weights,
                bias,
                out_c,
                in_c,
                kernel,
                stride,
                padding,
                shift,
                w_frac: _,
                out,
            } => {
                let (h, w) = (step.in_dims[1], step.in_dims[2]);
                let (oh, ow) = (step.out_dims[1], step.out_dims[2]);
                let (qmin, qmax) = (out.qmin(), out.qmax());
                let kred = in_c * kernel * kernel;
                let mut dst = std::mem::take(&mut self.slots[step.dst]);
                let src = &self.slots[step.src][..in_elems];
                for b in 0..batch {
                    for co in 0..*out_c {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut acc = 0i64;
                                for ci in 0..*in_c {
                                    for ky in 0..*kernel {
                                        for kx in 0..*kernel {
                                            let iy = oy * stride + ky;
                                            let ix = ox * stride + kx;
                                            if iy < *padding
                                                || ix < *padding
                                                || iy - padding >= h
                                                || ix - padding >= w
                                            {
                                                continue; // zero padding
                                            }
                                            let x = src[((b * in_c + ci) * h + (iy - padding)) * w
                                                + (ix - padding)];
                                            let wv = weights
                                                [co * kred + (ci * kernel + ky) * kernel + kx]
                                                as i64;
                                            acc += wv * x;
                                        }
                                    }
                                }
                                dst[((b * out_c + co) * oh + oy) * ow + ox] =
                                    requant(acc + bias[co], *shift, qmin, qmax);
                            }
                        }
                    }
                }
                self.slots[step.dst] = dst;
            }
            ScheduleOp::Dense {
                weights_t,
                bias,
                in_f,
                out_f,
                shift,
                w_frac: _,
                out,
            } => {
                let (qmin, qmax) = (out.qmin(), out.qmax());
                let mut dst = std::mem::take(&mut self.slots[step.dst]);
                let src = &self.slots[step.src][..in_elems];
                for b in 0..batch {
                    for o in 0..*out_f {
                        let mut acc = 0i64;
                        let row = &weights_t[o * in_f..(o + 1) * in_f];
                        for (i, &wv) in row.iter().enumerate() {
                            acc += wv as i64 * src[b * in_f + i];
                        }
                        dst[b * out_f + o] = requant(acc + bias[o], *shift, qmin, qmax);
                    }
                }
                self.slots[step.dst] = dst;
            }
            ScheduleOp::Relu => {
                if step.src == step.dst {
                    for v in self.slots[step.dst][..in_elems].iter_mut() {
                        *v = (*v).max(0);
                    }
                } else {
                    let mut dst = std::mem::take(&mut self.slots[step.dst]);
                    for (d, &s) in dst[..in_elems]
                        .iter_mut()
                        .zip(&self.slots[step.src][..in_elems])
                    {
                        *d = s.max(0);
                    }
                    self.slots[step.dst] = dst;
                }
            }
            ScheduleOp::MaxPool { kernel, stride } | ScheduleOp::AvgPool { kernel, stride } => {
                let is_max = matches!(step.op, ScheduleOp::MaxPool { .. });
                let (c, h, w) = (step.in_dims[0], step.in_dims[1], step.in_dims[2]);
                let (oh, ow) = (step.out_dims[1], step.out_dims[2]);
                let mut dst = std::mem::take(&mut self.slots[step.dst]);
                let src = &self.slots[step.src][..in_elems];
                for b in 0..batch {
                    for ch in 0..c {
                        for y in 0..oh {
                            for x in 0..ow {
                                let mut best = i64::MIN;
                                let mut acc = 0i64;
                                for ky in 0..*kernel {
                                    for kx in 0..*kernel {
                                        let iy = y * stride + ky;
                                        let ix = x * stride + kx;
                                        if iy < h && ix < w {
                                            let v = src[((b * c + ch) * h + iy) * w + ix];
                                            best = best.max(v);
                                            acc += v;
                                        }
                                    }
                                }
                                dst[((b * c + ch) * oh + y) * ow + x] = if is_max {
                                    best
                                } else {
                                    // The divisor is always the full window,
                                    // even where it clips the edge.
                                    div_round(acc, (kernel * kernel) as i64)
                                };
                            }
                        }
                    }
                }
                self.slots[step.dst] = dst;
            }
            ScheduleOp::GlobalAvgPool => {
                let (c, h, w) = (step.in_dims[0], step.in_dims[1], step.in_dims[2]);
                let mut dst = std::mem::take(&mut self.slots[step.dst]);
                let src = &self.slots[step.src][..in_elems];
                for b in 0..batch {
                    for ch in 0..c {
                        let start = (b * c + ch) * h * w;
                        let acc: i64 = src[start..start + h * w].iter().sum();
                        dst[b * c + ch] = div_round(acc, (h * w) as i64);
                    }
                }
                self.slots[step.dst] = dst;
            }
            ScheduleOp::Affine { m, b: bb, out } => {
                let (c, plane) = (step.in_dims[0], step.in_dims[1] * step.in_dims[2]);
                let (qmin, qmax) = (out.qmin(), out.qmax());
                let mut dst = std::mem::take(&mut self.slots[step.dst]);
                if step.src == step.dst {
                    for b in 0..batch {
                        for ch in 0..c {
                            let start = (b * c + ch) * plane;
                            for v in dst[start..start + plane].iter_mut() {
                                *v = requant(*v * m[ch] + bb[ch], MUL_FRAC as i32, qmin, qmax);
                            }
                        }
                    }
                } else {
                    let src = &self.slots[step.src][..in_elems];
                    for b in 0..batch {
                        for ch in 0..c {
                            let start = (b * c + ch) * plane;
                            for i in 0..plane {
                                dst[start + i] = requant(
                                    src[start + i] * m[ch] + bb[ch],
                                    MUL_FRAC as i32,
                                    qmin,
                                    qmax,
                                );
                            }
                        }
                    }
                }
                self.slots[step.dst] = dst;
            }
            ScheduleOp::McDropout {
                rate,
                scale_q,
                params,
            } => {
                let idx = *stream_idx;
                *stream_idx += 1;
                let sampling = mode == SimMode::McSample && *rate > 0.0;
                if !sampling {
                    // A non-sampling pass draws nothing (stream alignment).
                    if step.src != step.dst {
                        let mut dst = std::mem::take(&mut self.slots[step.dst]);
                        dst[..in_elems].copy_from_slice(&self.slots[step.src][..in_elems]);
                        self.slots[step.dst] = dst;
                    }
                    return;
                }
                let keep = 1.0 - *rate;
                // Filter-wise masks for NCHW values, element-wise otherwise
                // — one draw per (batch, channel), the plan's PerBatch
                // granularity.
                let (draws, plane) = if step.in_dims.len() == 3 {
                    (batch * step.in_dims[0], step.in_dims[1] * step.in_dims[2])
                } else {
                    (in_elems, 1)
                };
                let rng = &mut self.streams[idx];
                let mask: Vec<bool> = (0..draws).map(|_| rng.bernoulli(keep)).collect();
                let (qmin, qmax) = (params.qmin(), params.qmax());
                let drop_one = |v: i64, kept: bool| -> i64 {
                    if kept {
                        requant(v * scale_q, MUL_FRAC as i32, qmin, qmax)
                    } else {
                        0
                    }
                };
                let mut dst = std::mem::take(&mut self.slots[step.dst]);
                if step.src == step.dst {
                    for (i, v) in dst[..in_elems].iter_mut().enumerate() {
                        *v = drop_one(*v, mask[(i / plane) % draws]);
                    }
                } else {
                    for (i, (d, &s)) in dst[..in_elems]
                        .iter_mut()
                        .zip(&self.slots[step.src][..in_elems])
                        .enumerate()
                    {
                        *d = drop_one(s, mask[(i / plane) % draws]);
                    }
                }
                self.slots[step.dst] = dst;
            }
            ScheduleOp::Merge {
                m_shift,
                s_shift,
                out,
            } => {
                let (qmin, qmax) = (out.qmin(), out.qmax());
                let src2 = step.src2.expect("merge has a shortcut source");
                let mut dst = std::mem::take(&mut self.slots[step.dst]);
                for (i, d) in dst[..out_elems].iter_mut().enumerate() {
                    let x = requant(self.slots[step.src][i], *m_shift, qmin, qmax);
                    let y = requant(self.slots[src2][i], *s_shift, qmin, qmax);
                    *d = (x + y).max(0).min(qmax);
                }
                self.slots[step.dst] = dst;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_shift_ties_away_from_zero() {
        assert_eq!(round_shift(3, 1), 2); // 1.5 -> 2
        assert_eq!(round_shift(-3, 1), -2); // -1.5 -> -2
        assert_eq!(round_shift(5, 2), 1); // 1.25 -> 1
        assert_eq!(round_shift(6, 2), 2); // 1.5 -> 2
        assert_eq!(round_shift(7, 0), 7);
    }

    #[test]
    fn requant_saturates_and_scales_up() {
        assert_eq!(requant(1000, 2, -128, 127), 127);
        assert_eq!(requant(-1000, 2, -128, 127), -128);
        assert_eq!(requant(3, -2, -128, 127), 12);
        assert_eq!(requant(i64::MAX, -4, -128, 127), 127);
    }

    #[test]
    fn div_round_matches_half_away_rule() {
        assert_eq!(div_round(3, 2), 2); // 1.5 -> 2
        assert_eq!(div_round(-3, 2), -2);
        assert_eq!(div_round(5, 4), 1); // 1.25 -> 1
        assert_eq!(div_round(7, 4), 2); // 1.75 -> 2
    }
}
