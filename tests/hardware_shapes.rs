//! Integration test: the hardware model reproduces the qualitative shapes of
//! the paper's Fig. 5 and Tables II-III through the public facade API.

use bayesnn_fpga::hw::accelerator::{AcceleratorConfig, AcceleratorModel};
use bayesnn_fpga::hw::baselines::{fpga_baselines, software_baselines_quoted};
use bayesnn_fpga::hw::{FpgaDevice, MappingStrategy};
use bayesnn_fpga::models::{zoo, ModelConfig};

fn base_config() -> AcceleratorConfig {
    AcceleratorConfig::new(FpgaDevice::xcku115())
        .with_bits(8)
        .with_reuse_factor(32)
}

#[test]
fn fig5_left_shape_logic_up_bram_flat_across_models() {
    for (config, arch) in [
        (
            ModelConfig::mnist().with_width_divisor(2),
            zoo::Architecture::LeNet5,
        ),
        (
            ModelConfig::cifar10().with_width_divisor(8),
            zoo::Architecture::ResNet18,
        ),
        (
            ModelConfig::svhn().with_width_divisor(8),
            zoo::Architecture::Vgg11,
        ),
    ] {
        let base = arch.spec(&config);
        let mut last_lut = 0;
        let mut first_bram = None;
        for n in 1..=4usize {
            let spec = base.clone().with_mcd_layers(n, 0.25).unwrap();
            let report = AcceleratorModel::new(spec, base_config())
                .unwrap()
                .estimate()
                .unwrap();
            assert!(
                report.total_resources.lut >= last_lut,
                "{arch}: LUT not monotone"
            );
            last_lut = report.total_resources.lut;
            match first_bram {
                None => first_bram = Some(report.total_resources.bram_36k),
                Some(b) => assert_eq!(report.total_resources.bram_36k, b, "{arch}: BRAM not flat"),
            }
        }
    }
}

#[test]
fn fig5_right_shape_spatial_flat_unoptimized_linear() {
    let spec = zoo::lenet5(&ModelConfig::mnist().with_width_divisor(2))
        .with_mcd_layers(1, 0.25)
        .unwrap();
    let latency = |samples: usize, optimized: bool| {
        let model = AcceleratorModel::new(
            spec.clone(),
            base_config()
                .with_mapping(MappingStrategy::Spatial)
                .with_mc_samples(samples),
        )
        .unwrap();
        if optimized {
            model.estimate().unwrap().latency_ms
        } else {
            model.estimate_unoptimized().unwrap().latency_ms
        }
    };
    assert!(latency(8, false) > 6.0 * latency(1, false));
    assert!(latency(8, true) < 1.05 * latency(1, true));
}

#[test]
fn table2_shape_fpga_design_is_most_energy_efficient() {
    let spec = zoo::lenet5(&ModelConfig::mnist())
        .with_mcd_layers(1, 0.25)
        .unwrap();
    let ours = AcceleratorModel::new(
        spec,
        base_config()
            .with_mapping(MappingStrategy::Spatial)
            .with_mc_samples(3),
    )
    .unwrap()
    .estimate()
    .unwrap();
    assert!(ours.fits);
    // Our estimated design must beat every quoted software baseline on energy,
    // and be competitive with (same order of magnitude as) the prior FPGA work.
    for row in software_baselines_quoted() {
        assert!(
            ours.energy_per_image_j < row.energy_per_image_j(),
            "FPGA {} J vs {} {} J",
            ours.energy_per_image_j,
            row.work,
            row.energy_per_image_j()
        );
    }
    let best_prior = fpga_baselines()
        .iter()
        .map(|r| r.energy_per_image_j())
        .fold(f64::INFINITY, f64::min);
    assert!(ours.energy_per_image_j < best_prior * 10.0);
}

#[test]
fn table3_shape_dynamic_power_dominated_by_logic_and_io() {
    let spec = zoo::lenet5(&ModelConfig::mnist())
        .with_mcd_layers(1, 0.25)
        .unwrap();
    let report = AcceleratorModel::new(
        spec,
        base_config()
            .with_mapping(MappingStrategy::Spatial)
            .with_mc_samples(3),
    )
    .unwrap()
    .estimate()
    .unwrap();
    let power = &report.power;
    // Dynamic power is the majority share (the paper reports 72 %).
    assert!(power.dynamic_fraction() > 0.5);
    // Logic&signal and IO are the two largest dynamic components.
    let mut dynamic = [
        ("clocking", power.clocking_w),
        ("logic", power.logic_signal_w),
        ("bram", power.bram_w),
        ("io", power.io_w),
        ("dsp", power.dsp_w),
    ];
    dynamic.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let top_two: Vec<&str> = dynamic[..2].iter().map(|(n, _)| *n).collect();
    assert!(
        top_two.contains(&"logic"),
        "top dynamic components {top_two:?}"
    );
    assert!(
        top_two.contains(&"io"),
        "top dynamic components {top_two:?}"
    );
}
