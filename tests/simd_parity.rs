//! SIMD/scalar parity suite: every vector backend the host can run must
//! reproduce the scalar reference **bitwise** — for the packed matmul
//! kernels, the requantize row helpers and the im2row fill, across odd
//! shapes (remainder rows/columns, single-row and single-column products)
//! and thread counts, and end to end through the quantized inference plans
//! for every format in the paper's search space `{4, 6, 8, 16}`.
//!
//! Backends are forced through the process-global override
//! (`bnn_tensor::simd::set_backend_override`), so the scalar kernels stay
//! exercised on AVX2 hosts and the suite degrades gracefully on machines
//! with nothing but scalar (each sweep then compares scalar to itself).

use bayesnn_fpga::tensor::exec::Executor;
use bayesnn_fpga::tensor::int::{
    im2row_i16_into, matmul_abt_i64_into, matmul_i16, matmul_wide_i32_into,
    requantize_i32_row_biased_into, requantize_i32_row_into, requantize_i64_row_biased_into,
    requantize_i64_row_into,
};
use bayesnn_fpga::tensor::linalg::ConvGeometry;
use bayesnn_fpga::tensor::rng::{Rng, Xoshiro256StarStar};
use bayesnn_fpga::tensor::simd::{available_backends, set_backend_override, Backend};
use std::sync::Mutex;

/// The backend override is process-global; every test in this binary takes
/// this lock so forced selections never bleed across threads.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per available backend (scalar included) with that backend
/// forced, handing it the scalar result of `reference` to compare against.
/// The override is always released, even if an assertion fires.
fn for_each_backend(mut f: impl FnMut(Backend)) {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            set_backend_override(None);
        }
    }
    let _reset = Reset;
    for backend in available_backends() {
        set_backend_override(Some(backend));
        f(backend);
    }
}

fn codes_i8_range(n: usize, rng: &mut Xoshiro256StarStar) -> Vec<i16> {
    (0..n)
        .map(|_| (rng.next_u64() % 255) as i8 as i16)
        .collect()
}

fn codes_i16(n: usize, rng: &mut Xoshiro256StarStar) -> Vec<i16> {
    (0..n).map(|_| rng.next_u64() as i16).collect()
}

/// Odd shapes: remainder rows against the 8/4-row register blocks,
/// remainder columns against the vector width, single-row and single-column
/// products, and a `k` spanning several vector strides plus a scalar tail.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 7, 1),
    (1, 40, 33),
    (2, 1, 5),
    (3, 16, 5),
    (5, 37, 1),
    (8, 33, 9),
    (9, 129, 2),
    (13, 40, 17),
];

#[test]
fn matmul_kernels_match_scalar_bitwise_across_backends_and_threads() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(41);
    for &(m, k, n) in SHAPES {
        let a8 = codes_i8_range(m * k, &mut rng);
        let bt8 = codes_i8_range(n * k, &mut rng);
        let a16 = codes_i16(m * k, &mut rng);
        let bt16 = codes_i16(n * k, &mut rng);
        for threads in [1usize, 4] {
            let exec = Executor::new(threads);
            let mut reference32 = vec![0i32; m * n];
            let mut reference64 = vec![0i64; m * n];
            {
                let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
                set_backend_override(Some(Backend::Scalar));
                matmul_wide_i32_into(&exec, &a8, &bt8, m, k, n, &mut reference32).unwrap();
                matmul_abt_i64_into(&exec, &a16, &bt16, m, k, n, &mut reference64).unwrap();
                set_backend_override(None);
            }
            for_each_backend(|backend| {
                let mut got32 = vec![0i32; m * n];
                matmul_wide_i32_into(&exec, &a8, &bt8, m, k, n, &mut got32).unwrap();
                assert_eq!(
                    got32, reference32,
                    "wide_i32 {m}x{k}x{n} threads={threads} backend={backend:?}"
                );
                let mut got64 = vec![0i64; m * n];
                matmul_abt_i64_into(&exec, &a16, &bt16, m, k, n, &mut got64).unwrap();
                assert_eq!(
                    got64, reference64,
                    "abt_i64 {m}x{k}x{n} threads={threads} backend={backend:?}"
                );
            });
        }
    }
}

#[test]
fn transposed_i16_matmul_matches_naive_reference() {
    // `matmul_i16` now repacks through the register-blocked abt kernel; pin
    // it to a naive triple loop so the repack itself is verified, not just
    // backend-vs-backend consistency.
    let mut rng = Xoshiro256StarStar::seed_from_u64(43);
    for &(m, k, n) in SHAPES {
        let a = codes_i16(m * k, &mut rng);
        let b = codes_i16(k * n, &mut rng);
        let mut naive = vec![0i64; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for p in 0..k {
                    acc += a[i * k + p] as i64 * b[p * n + j] as i64;
                }
                naive[i * n + j] = acc;
            }
        }
        for_each_backend(|backend| {
            let got = matmul_i16(&a, &b, m, k, n).unwrap();
            assert_eq!(got, naive, "{m}x{k}x{n} backend={backend:?}");
        });
    }
}

#[test]
fn requantize_rows_match_scalar_bitwise_across_backends() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(47);
    let len = 163; // several vector strides plus a ragged tail
    let acc32: Vec<i32> = (0..len).map(|_| rng.next_u64() as i32 >> 8).collect();
    let acc64: Vec<i64> = (0..len).map(|_| rng.next_u64() as i64 >> 16).collect();
    let biases: Vec<i64> = (0..len)
        .map(|_| (rng.next_u64() % 4096) as i64 - 2048)
        .collect();
    // Shift 0, mid-range shifts, a shift past every accumulator bit, and a
    // negative (scale-up) shift that must take the scalar fallback; bounds
    // include narrow 4-bit-style ranges and the full i16 storage range.
    for shift in [0i32, 1, 7, 13, 40, -2] {
        for (qmin, qmax) in [
            (-128i64, 127i64),
            (-8, 7),
            (i16::MIN as i64, i16::MAX as i64),
        ] {
            let mut reference32 = vec![0i16; len];
            let mut reference64 = vec![0i16; len];
            let mut ref32b = vec![0i16; len];
            let mut ref64b = vec![0i16; len];
            {
                let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
                set_backend_override(Some(Backend::Scalar));
                requantize_i32_row_into(&acc32, 77, shift, qmin, qmax, &mut reference32);
                requantize_i64_row_into(&acc64, -129, shift, qmin, qmax, &mut reference64);
                requantize_i32_row_biased_into(&acc32, &biases, shift, qmin, qmax, &mut ref32b);
                requantize_i64_row_biased_into(&acc64, &biases, shift, qmin, qmax, &mut ref64b);
                set_backend_override(None);
            }
            for_each_backend(|backend| {
                let ctx = format!("shift={shift} bounds=({qmin},{qmax}) backend={backend:?}");
                let mut got = vec![0i16; len];
                requantize_i32_row_into(&acc32, 77, shift, qmin, qmax, &mut got);
                assert_eq!(got, reference32, "i32 row {ctx}");
                requantize_i64_row_into(&acc64, -129, shift, qmin, qmax, &mut got);
                assert_eq!(got, reference64, "i64 row {ctx}");
                requantize_i32_row_biased_into(&acc32, &biases, shift, qmin, qmax, &mut got);
                assert_eq!(got, ref32b, "i32 biased row {ctx}");
                requantize_i64_row_biased_into(&acc64, &biases, shift, qmin, qmax, &mut got);
                assert_eq!(got, ref64b, "i64 biased row {ctx}");
            });
        }
    }
}

#[test]
fn im2row_matches_scalar_bitwise_across_backends() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(53);
    // (kernel, stride, padding) over a non-square input: padded, unpadded,
    // strided, 1x1, and a kernel wider than the padding.
    let cases = [
        (3usize, 1usize, 1usize),
        (3, 2, 0),
        (1, 1, 0),
        (5, 1, 2),
        (4, 3, 1),
    ];
    let (batch, channels, in_h, in_w) = (2usize, 3usize, 9usize, 7usize);
    let input = codes_i16(batch * channels * in_h * in_w, &mut rng);
    for (kernel, stride, padding) in cases {
        let geom = ConvGeometry::square(in_h, in_w, kernel, stride, padding);
        let mut reference = Vec::new();
        let ref_shape;
        {
            let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            set_backend_override(Some(Backend::Scalar));
            ref_shape = im2row_i16_into(&input, batch, channels, &geom, &mut reference).unwrap();
            set_backend_override(None);
        }
        for_each_backend(|backend| {
            let mut got = Vec::new();
            let shape = im2row_i16_into(&input, batch, channels, &geom, &mut got).unwrap();
            assert_eq!(shape, ref_shape);
            assert_eq!(
                got, reference,
                "kernel={kernel} stride={stride} pad={padding} backend={backend:?}"
            );
        });
    }
}

#[test]
fn quantized_plans_are_backend_invariant_across_formats() {
    use bayesnn_fpga::models::{zoo, ModelConfig};
    use bayesnn_fpga::quant::{CalibratedNetwork, FixedPointFormat};
    use bayesnn_fpga::tensor::Tensor;

    // A small multi-exit LeNet-5 (random weights suffice: parity is about
    // arithmetic, not accuracy) calibrated on random images.
    let model_cfg = ModelConfig::mnist()
        .with_resolution(10, 10)
        .with_width_divisor(8)
        .with_classes(4);
    let network = zoo::lenet5(&model_cfg)
        .with_exits_after_every_block()
        .unwrap()
        .with_exit_mcd(0.25)
        .unwrap()
        .build(9)
        .unwrap();
    let mut rng = Xoshiro256StarStar::seed_from_u64(59);
    let calib = Tensor::randn(&[12, 1, 10, 10], &mut rng);
    let images = Tensor::randn(&[5, 1, 10, 10], &mut rng);
    let calibrated = CalibratedNetwork::calibrate(&network, &calib).unwrap();

    for format in FixedPointFormat::search_space() {
        let mut plan = calibrated.plan(format).unwrap();
        let reference;
        {
            let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            set_backend_override(Some(Backend::Scalar));
            reference = plan.predict_probs(&images, 8, 2023).unwrap();
            set_backend_override(None);
        }
        for_each_backend(|backend| {
            let got = plan.predict_probs(&images, 8, 2023).unwrap();
            assert_eq!(
                got.as_slice(),
                reference.as_slice(),
                "{format} backend={backend:?}"
            );
        });
    }
}
