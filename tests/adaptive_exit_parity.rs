//! Parity suite of the adaptive early-exit batched path (mid-flight batch
//! compaction), pinning the properties that make adaptive serving safe to
//! turn on:
//!
//! 1. **Single-sample parity** — `predict_adaptive_batch` on a batch of N
//!    samples produces, for every sample, exactly the probabilities *and*
//!    exit choice of an adaptive call on that sample alone, for every
//!    fixed-point format in the paper's search space `{4, 6, 8, 16}`,
//!    across executors, and on the float [`MultiExitPlan`] too. Compacting
//!    survivors into a dense smaller batch never changes anyone's bits.
//! 2. **`Never` ≡ fixed depth** — the `ExitPolicy::Never` configuration is
//!    bit-exact with `predict_probs_batch`, so adaptive execution strictly
//!    generalizes the fixed-depth path.
//! 3. **Compaction patterns** — the all-retire, none-retire and interleaved
//!    retire patterns all hold parity (the interleaved case exercises
//!    `copy_within` compaction with gaps).
//!
//! Run under `BNN_THREADS=1` and `BNN_THREADS=4` by `make test-adaptive`:
//! the global-executor default must not leak into any result bit.

use bayesnn_fpga::models::{zoo, ExitPolicy, ModelConfig, MultiExitNetwork};
use bayesnn_fpga::quant::{CalibratedNetwork, FixedPointFormat};
use bayesnn_fpga::tensor::exec::Executor;
use bayesnn_fpga::tensor::rng::Xoshiro256StarStar;
use bayesnn_fpga::tensor::Tensor;

const MC_SAMPLES: usize = 6;
const MC_SEED: u64 = 2023;
const BATCH: usize = 5;

/// The small multi-exit LeNet-5 of the plan test suites (10x10, width/8,
/// 4 classes; 100 input elements per sample).
fn small_lenet() -> MultiExitNetwork {
    zoo::lenet5(
        &ModelConfig::mnist()
            .with_resolution(10, 10)
            .with_width_divisor(8)
            .with_classes(4),
    )
    .with_exits_after_every_block()
    .unwrap()
    .with_exit_mcd(0.25)
    .unwrap()
    .build(3)
    .unwrap()
}

/// A batch of well-formed inputs plus the same data as single-sample chunks.
fn batch_and_singles(batch: usize) -> (Tensor, Vec<Tensor>) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(11);
    let inputs = Tensor::randn(&[batch, 1, 10, 10], &mut rng);
    let singles = inputs
        .as_slice()
        .chunks_exact(100)
        .map(|c| Tensor::from_vec(c.to_vec(), &[1, 1, 10, 10]).unwrap())
        .collect();
    (inputs, singles)
}

/// The policy sweep every parity case runs: both threshold families at
/// values that exercise mixed, eager and reluctant retirement, plus the
/// deterministic (`n_samples = 0`) consults via the caller's choice of
/// sample count.
fn policies() -> Vec<ExitPolicy> {
    vec![
        ExitPolicy::Confidence { threshold: 0.3 },
        ExitPolicy::Confidence { threshold: 0.0 },
        ExitPolicy::Confidence { threshold: 1.0 },
        ExitPolicy::Entropy { threshold: 0.97 },
        ExitPolicy::Entropy { threshold: 0.0 },
    ]
}

/// Acceptance-criteria sweep: adaptive batched prediction (probabilities
/// AND exit choices) is bit-exact with per-sample adaptive calls for every
/// searched format, policy and MC sample count, on both the sequential and
/// a multi-threaded executor — and executor-invariant.
#[test]
fn quant_adaptive_batch_matches_singles_across_formats_and_executors() {
    let network = small_lenet();
    let mut rng = Xoshiro256StarStar::seed_from_u64(5);
    let calib = Tensor::randn(&[8, 1, 10, 10], &mut rng);
    let calibrated = CalibratedNetwork::calibrate(&network, &calib).unwrap();
    let (inputs, singles) = batch_and_singles(BATCH);

    for format in FixedPointFormat::search_space() {
        for policy in policies() {
            for n_samples in [0usize, MC_SAMPLES] {
                let mut reference: Option<(Vec<f32>, Vec<usize>)> = None;
                for (name, exec) in [
                    ("sequential", Executor::sequential()),
                    ("threads(4)", Executor::new(4)),
                ] {
                    let mut plan = calibrated.plan(format).unwrap();
                    plan.set_executor(exec);
                    let batched = plan
                        .predict_adaptive_batch(&inputs, n_samples, MC_SEED, &policy)
                        .unwrap();
                    assert!(
                        batched.stats.ops_executed <= batched.stats.ops_fixed,
                        "{format} {policy} n={n_samples}: executed more than fixed depth"
                    );
                    let mut concat = Vec::new();
                    let mut exits = Vec::new();
                    for single in &singles {
                        let one = plan
                            .predict_adaptive_batch(single, n_samples, MC_SEED, &policy)
                            .unwrap();
                        concat.extend_from_slice(one.probs.as_slice());
                        exits.extend_from_slice(&one.exit_taken);
                    }
                    assert_eq!(
                        batched.probs.as_slice(),
                        &concat[..],
                        "{format} {policy} n={n_samples} on {name}: \
                         batched probs != concat of single-sample calls"
                    );
                    assert_eq!(
                        batched.exit_taken, exits,
                        "{format} {policy} n={n_samples} on {name}: \
                         batched exit choices != single-sample choices"
                    );
                    match &reference {
                        None => {
                            reference =
                                Some((batched.probs.as_slice().to_vec(), batched.exit_taken))
                        }
                        Some((probs, taken)) => {
                            assert_eq!(
                                &probs[..],
                                batched.probs.as_slice(),
                                "{format} {policy} n={n_samples}: probs differ across executors"
                            );
                            assert_eq!(
                                taken, &batched.exit_taken,
                                "{format} {policy} n={n_samples}: exits differ across executors"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// `ExitPolicy::Never` reproduces the fixed-depth batched path bit for bit
/// (with every sample landing on the last exit and zero ops saved), for
/// every searched format.
#[test]
fn quant_adaptive_never_matches_fixed_batch() {
    let network = small_lenet();
    let mut rng = Xoshiro256StarStar::seed_from_u64(5);
    let calib = Tensor::randn(&[8, 1, 10, 10], &mut rng);
    let calibrated = CalibratedNetwork::calibrate(&network, &calib).unwrap();
    let (inputs, _) = batch_and_singles(BATCH);

    for format in FixedPointFormat::search_space() {
        let mut plan = calibrated.plan(format).unwrap();
        let fixed = plan
            .predict_probs_batch(&inputs, MC_SAMPLES, MC_SEED)
            .unwrap();
        let adaptive = plan
            .predict_adaptive_batch(&inputs, MC_SAMPLES, MC_SEED, &ExitPolicy::Never)
            .unwrap();
        assert_eq!(
            adaptive.probs.as_slice(),
            fixed.as_slice(),
            "{format}: Never must be bit-exact with predict_probs_batch"
        );
        let last = plan.num_exits() - 1;
        assert!(adaptive.exit_taken.iter().all(|&e| e == last));
        assert_eq!(adaptive.stats.ops_executed, adaptive.stats.ops_fixed);
        assert_eq!(adaptive.stats.ops_saved_fraction(), 0.0);
    }
}

/// Float-plan side of the single-sample parity (the reference path for
/// unquantized serving), including `Never` ≡ fixed depth.
#[test]
fn float_adaptive_batch_matches_singles() {
    let network = small_lenet();
    let (inputs, singles) = batch_and_singles(4);
    let mut plan = network.compile_plan(&[1, 10, 10]).unwrap();

    for policy in policies() {
        let batched = plan
            .predict_adaptive_batch(&inputs, MC_SAMPLES, MC_SEED, &policy)
            .unwrap();
        let mut concat = Vec::new();
        let mut exits = Vec::new();
        for single in &singles {
            let one = plan
                .predict_adaptive_batch(single, MC_SAMPLES, MC_SEED, &policy)
                .unwrap();
            concat.extend_from_slice(one.probs.as_slice());
            exits.extend_from_slice(&one.exit_taken);
        }
        assert_eq!(
            batched.probs.as_slice(),
            &concat[..],
            "float {policy}: batched != concat of single-sample calls"
        );
        assert_eq!(batched.exit_taken, exits, "float {policy}: exit choices");
    }

    let fixed = plan
        .predict_probs_batch(&inputs, MC_SAMPLES, MC_SEED)
        .unwrap();
    let never = plan
        .predict_adaptive_batch(&inputs, MC_SAMPLES, MC_SEED, &ExitPolicy::Never)
        .unwrap();
    assert_eq!(never.probs.as_slice(), fixed.as_slice());
}

/// Compaction-pattern sweep on the 8-bit plan: the all-retire pattern
/// (threshold 0) stops everyone at exit 0, the none-retire pattern
/// (threshold 1) runs everyone to the last exit, and a calibrated midpoint
/// threshold produces an interleaved pattern — retired rows scattered
/// between survivors — that still holds single-sample parity through the
/// `copy_within` compaction.
#[test]
fn compaction_holds_at_all_none_and_interleaved_retire_patterns() {
    let network = small_lenet();
    let mut rng = Xoshiro256StarStar::seed_from_u64(5);
    let calib = Tensor::randn(&[8, 1, 10, 10], &mut rng);
    let calibrated = CalibratedNetwork::calibrate(&network, &calib).unwrap();
    let (inputs, singles) = batch_and_singles(BATCH);
    let mut plan = calibrated
        .plan(FixedPointFormat::new(8, 3).unwrap())
        .unwrap();
    let last = plan.num_exits() - 1;

    // All retire at exit 0.
    let eager = plan
        .predict_adaptive_batch(
            &inputs,
            MC_SAMPLES,
            MC_SEED,
            &ExitPolicy::Confidence { threshold: 0.0 },
        )
        .unwrap();
    assert!(
        eager.exit_taken.iter().all(|&e| e == 0),
        "{:?}",
        eager.exit_taken
    );
    assert!(eager.stats.ops_saved_fraction() > 0.0);

    // None retire early (softmax of finite logits never reaches 1.0).
    let strict = plan
        .predict_adaptive_batch(
            &inputs,
            MC_SAMPLES,
            MC_SEED,
            &ExitPolicy::Confidence { threshold: 1.0 },
        )
        .unwrap();
    assert!(
        strict.exit_taken.iter().all(|&e| e == last),
        "{:?}",
        strict.exit_taken
    );

    // Interleaved: the midpoint of the batch's first-exit confidences
    // leaves a mixed pattern; parity must survive the gappy compaction.
    let classes = eager.stats.classes;
    let confs: Vec<f32> = eager
        .probs
        .as_slice()
        .chunks_exact(classes)
        .map(|r| r.iter().copied().fold(f32::NEG_INFINITY, f32::max))
        .collect();
    let min = confs.iter().copied().fold(f32::INFINITY, f32::min);
    let max = confs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    assert!(min < max, "probe confidences are degenerate");
    let policy = ExitPolicy::Confidence {
        threshold: f64::from((min + max) / 2.0),
    };
    let mixed = plan
        .predict_adaptive_batch(&inputs, MC_SAMPLES, MC_SEED, &policy)
        .unwrap();
    assert!(
        mixed.exit_taken.contains(&0) && mixed.exit_taken.contains(&last),
        "expected an interleaved retire pattern, got {:?}",
        mixed.exit_taken
    );
    for (i, single) in singles.iter().enumerate() {
        let one = plan
            .predict_adaptive_batch(single, MC_SAMPLES, MC_SEED, &policy)
            .unwrap();
        assert_eq!(
            one.probs.as_slice(),
            &mixed.probs.as_slice()[i * classes..(i + 1) * classes],
            "interleaved pattern: sample {i} probs changed under compaction"
        );
        assert_eq!(one.exit_taken[0], mixed.exit_taken[i], "sample {i} exit");
    }
    assert!(mixed.stats.ops_executed < mixed.stats.ops_fixed);
    assert!(mixed.stats.ops_executed > eager.stats.ops_executed);
}
