//! Differential tests: the emitted HLS design's golden-reference simulator
//! is bit-exact with the compiled integer plan it was lowered from.
//!
//! `bnn_hls::HlsSimulator` re-implements every schedule op independently
//! (direct convolution, scalar loops, local rounding primitives), so
//! agreement here means the *emitted design* — not just the generator's
//! input — computes the arithmetic Phase 3 scored. This is the role
//! C-simulation plays in a real HLS flow, runnable without Vivado.
//!
//! Coverage: every zoo subject × every searched format {4, 6, 8, 16} bits,
//! deterministic and Monte-Carlo forwards, seeded multi-sample prediction,
//! saturation edge inputs, and the static-schedule cross-check against
//! `bnn-hw`'s analytic MAC model.

use bayesnn_fpga::hls::{HlsConfig, HlsSimulator, LoweredDesign, SimMode};
use bayesnn_fpga::models::{zoo, ModelConfig, NetworkSpec};
use bayesnn_fpga::nn::Mode;
use bayesnn_fpga::quant::{CalibratedNetwork, FixedPointFormat, QuantPlan};
use bayesnn_fpga::tensor::rng::Xoshiro256StarStar;
use bayesnn_fpga::tensor::Tensor;

struct Subject {
    name: &'static str,
    spec: NetworkSpec,
    calibrated: CalibratedNetwork,
    /// A representative input batch (distinct from the calibration batch).
    input: Tensor,
}

fn subjects() -> Vec<Subject> {
    let mut out = Vec::new();
    {
        let spec = zoo::lenet5(
            &ModelConfig::mnist()
                .with_resolution(10, 10)
                .with_width_divisor(8)
                .with_classes(4),
        )
        .with_exits_after_every_block()
        .unwrap()
        .with_exit_mcd(0.25)
        .unwrap();
        let net = spec.build(3).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let calib = Tensor::randn(&[6, 1, 10, 10], &mut rng);
        let calibrated = CalibratedNetwork::calibrate(&net, &calib).unwrap();
        let input = Tensor::randn(&[3, 1, 10, 10], &mut rng);
        out.push(Subject {
            name: "lenet5",
            spec,
            calibrated,
            input,
        });
    }
    {
        let spec = zoo::resnet18(
            &ModelConfig::cifar10()
                .with_resolution(12, 12)
                .with_width_divisor(16),
        )
        .with_exits_after_every_block()
        .unwrap()
        .with_exit_mcd(0.3)
        .unwrap();
        let net = spec.build(11).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let calib = Tensor::randn(&[4, 3, 12, 12], &mut rng);
        let calibrated = CalibratedNetwork::calibrate(&net, &calib).unwrap();
        let input = Tensor::randn(&[2, 3, 12, 12], &mut rng);
        out.push(Subject {
            name: "resnet18",
            spec,
            calibrated,
            input,
        });
    }
    out
}

fn design_and_plan(subject: &Subject, format: FixedPointFormat) -> (LoweredDesign, QuantPlan) {
    let config = HlsConfig::new(subject.name).with_format(format);
    let design = LoweredDesign::generate(&subject.calibrated, &config).unwrap();
    let plan = subject.calibrated.plan(format).unwrap();
    (design, plan)
}

/// Dequantizes one exit's integer codes the way the plan's
/// `forward_exits_int` does, for exact f32 comparison.
fn dequant(codes: &[i64], scale: f32) -> Vec<f32> {
    codes.iter().map(|&c| c as f32 * scale).collect()
}

#[test]
fn forward_is_bit_exact_in_both_modes_for_every_subject_and_format() {
    for subject in subjects() {
        for format in FixedPointFormat::search_space() {
            let (design, mut plan) = design_and_plan(&subject, format);
            let mut sim = HlsSimulator::new(design.schedule().clone());

            // Deterministic forward: no masks drawn on either side.
            let sim_eval = sim.forward_exits(&subject.input, SimMode::Eval).unwrap();
            let plan_eval = plan.forward_exits_int(&subject.input, Mode::Eval).unwrap();
            assert_eq!(sim_eval.len(), plan_eval.len());
            for (e, (codes, reference)) in sim_eval.iter().zip(&plan_eval).enumerate() {
                let scale = design.schedule().exits[e].out_params.scale();
                assert_eq!(
                    dequant(codes, scale),
                    reference.as_slice(),
                    "{} {:?} exit {e} Eval",
                    subject.name,
                    format
                );
            }

            // Monte-Carlo forward: identical reseed on both sides, masks
            // drawn from the same per-step streams.
            plan.reseed_mc_streams(99);
            sim.reseed_mc_streams(99);
            let sim_mc = sim
                .forward_exits(&subject.input, SimMode::McSample)
                .unwrap();
            let plan_mc = plan
                .forward_exits_int(&subject.input, Mode::McSample)
                .unwrap();
            for (e, (codes, reference)) in sim_mc.iter().zip(&plan_mc).enumerate() {
                let scale = design.schedule().exits[e].out_params.scale();
                assert_eq!(
                    dequant(codes, scale),
                    reference.as_slice(),
                    "{} {:?} exit {e} McSample",
                    subject.name,
                    format
                );
            }
        }
    }
}

#[test]
fn predict_probs_is_bit_exact_for_every_subject_and_format() {
    for subject in subjects() {
        for format in FixedPointFormat::search_space() {
            let (design, mut plan) = design_and_plan(&subject, format);
            let mut sim = HlsSimulator::new(design.schedule().clone());
            // n_samples exercises: fewer than the exit count (early pass
            // break), an uneven multiple (partial last pass), and zero (the
            // one-deterministic-pass convention).
            for n_samples in [1, 5, 0] {
                let probs = sim.predict_probs(&subject.input, n_samples, 2023).unwrap();
                let reference = plan.predict_probs(&subject.input, n_samples, 2023).unwrap();
                assert_eq!(
                    probs.as_slice(),
                    reference.as_slice(),
                    "{} {:?} n_samples={n_samples}",
                    subject.name,
                    format
                );
            }
        }
    }
}

#[test]
fn saturation_edges_pin_identically_on_both_paths() {
    // Max-magnitude inputs against calibration ranges measured on unit-scale
    // data: the input quantizer and the downstream requantizers must clamp,
    // and both implementations must clamp the same way.
    let mut any_pinned = false;
    for subject in subjects() {
        let mut dims = vec![1];
        dims.extend_from_slice(
            subject
                .calibrated
                .plan(FixedPointFormat::new(8, 3).unwrap())
                .unwrap()
                .in_dims(),
        );
        let n: usize = dims.iter().product();
        let extreme: Vec<f32> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0e6 } else { -1.0e6 })
            .collect();
        let x = Tensor::from_vec(extreme, &dims).unwrap();
        for format in FixedPointFormat::search_space() {
            let (design, mut plan) = design_and_plan(&subject, format);
            let mut sim = HlsSimulator::new(design.schedule().clone());

            // The input quantizer pins at the format's rails.
            let in_params = design.schedule().in_params;
            assert_eq!(in_params.quantize_value(1.0e6), in_params.qmax());
            assert_eq!(in_params.quantize_value(-1.0e6), in_params.qmin());

            let sim_out = sim.forward_exits(&x, SimMode::Eval).unwrap();
            let plan_out = plan.forward_exits_int(&x, Mode::Eval).unwrap();
            for (e, (codes, reference)) in sim_out.iter().zip(&plan_out).enumerate() {
                let params = design.schedule().exits[e].out_params;
                assert_eq!(
                    dequant(codes, params.scale()),
                    reference.as_slice(),
                    "{} {:?} exit {e} saturated Eval",
                    subject.name,
                    format
                );
                if codes
                    .iter()
                    .any(|&c| c == params.qmin() || c == params.qmax())
                {
                    any_pinned = true;
                }
            }

            // The averaged prediction stays bit-exact (and finite) too.
            let probs = sim.predict_probs(&x, 3, 7).unwrap();
            let reference = plan.predict_probs(&x, 3, 7).unwrap();
            assert_eq!(probs.as_slice(), reference.as_slice());
            assert!(probs.as_slice().iter().all(|p| p.is_finite()));
        }
    }
    assert!(
        any_pinned,
        "extreme inputs should drive at least one exit logit to a rail"
    );
}

#[test]
fn static_schedule_cross_checks_the_hw_model() {
    for subject in subjects() {
        for format in FixedPointFormat::search_space() {
            let (design, plan) = design_and_plan(&subject, format);
            let summary = design.summary();
            // MACs: the emitted schedule and bnn-hw's analytic layer model
            // price the same machine, exactly.
            assert_eq!(
                summary.macs,
                bayesnn_fpga::hw::network_macs(&subject.spec).unwrap(),
                "{} {:?}",
                subject.name,
                format
            );
            // Stage count and arena footprint agree with the executing plan.
            assert_eq!(summary.steps, plan.num_steps());
            assert_eq!(
                summary.buffer_elems,
                design.schedule().buffer_elems(),
                "summary buffers derive from the schedule"
            );
            assert!(summary.pipeline_depth > 0 && summary.pipeline_depth <= summary.steps);
            assert!(summary.unit_ops >= summary.macs);
            assert!(summary.weight_params > 0);
        }
    }
}
