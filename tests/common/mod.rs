//! Shared driver for the thread-count determinism tests: a small pipeline
//! configuration plus run/compare helpers asserting bitwise-equal artifacts.
//!
//! Lives in `tests/common/` so the two determinism test binaries share it —
//! the `BNN_THREADS` test must be its own binary (own process), because
//! mutating the environment while other test threads read it through
//! `Executor::from_env` is undefined behavior on glibc.

use bayesnn_fpga::core::framework::FrameworkConfig;
use bayesnn_fpga::core::phase1::ModelVariant;
use bayesnn_fpga::core::pipeline::{PipelineArtifacts, PipelineSession, RecordingObserver};
use bayesnn_fpga::data::{DatasetSpec, SyntheticConfig};
use bayesnn_fpga::models::zoo::Architecture;
use bayesnn_fpga::models::ModelConfig;

/// A two-candidate quick-demo configuration small enough to run the full
/// pipeline several times per test.
pub fn small_config() -> FrameworkConfig {
    let mut config = FrameworkConfig::quick_demo(Architecture::LeNet5);
    config.phase1.model = ModelConfig::mnist()
        .with_resolution(10, 10)
        .with_width_divisor(8)
        .with_classes(4);
    config.phase1.dataset = SyntheticConfig::new(
        DatasetSpec::mnist_like()
            .with_resolution(10, 10)
            .with_classes(4),
    )
    .with_samples(80, 48);
    config.phase1.train.epochs = 2;
    config.phase1.variants = vec![ModelVariant::SingleExit, ModelVariant::McdMultiExit];
    config.phase1.confidence_thresholds = vec![0.8];
    config.phase3.reuse_factors = vec![16, 64];
    config
}

/// Runs the full pipeline, returning its artifacts and the recorded
/// observer event log.
pub fn run_pipeline(config: FrameworkConfig) -> (PipelineArtifacts, RecordingObserver) {
    let recorder = RecordingObserver::new();
    let mut session = PipelineSession::new(config)
        .unwrap()
        .with_observer(recorder.clone());
    session.run().unwrap();
    (session.artifacts().clone(), recorder)
}

/// Asserts every pipeline artifact — including each candidate's full trained
/// checkpoint — is bitwise equal between two runs.
pub fn assert_artifacts_identical(a: &PipelineArtifacts, b: &PipelineArtifacts) {
    let (a1, b1) = (a.phase1.as_ref().unwrap(), b.phase1.as_ref().unwrap());
    // Candidate metrics (accuracies, ECE, FLOPs ratios) and selection.
    assert_eq!(a1.result, b1.result);
    // Trained checkpoints: every parameter tensor and every piece of layer
    // state of every candidate, compared element-wise.
    assert_eq!(a1.candidate_checkpoints, b1.candidate_checkpoints);
    assert_eq!(a1.data, b1.data);
    // Mapping, co-exploration design points and the generated project.
    assert_eq!(
        a.phase2.as_ref().unwrap().result,
        b.phase2.as_ref().unwrap().result
    );
    assert_eq!(
        a.phase3.as_ref().unwrap().result,
        b.phase3.as_ref().unwrap().result
    );
    assert_eq!(
        a.phase4.as_ref().unwrap().output,
        b.phase4.as_ref().unwrap().output
    );
}
