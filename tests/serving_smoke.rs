//! Fast serving smoke test for `make ci`: a few hundred replayed requests
//! against a small quantized model on a real multi-worker server, asserting
//! that every response is delivered, correct (bit-exact with direct plan
//! calls), and that the replay report is internally consistent. Sized to
//! finish in a few seconds.

use bayesnn_fpga::models::{zoo, ModelConfig};
use bayesnn_fpga::quant::{CalibratedNetwork, FixedPointFormat};
use bayesnn_fpga::serve::replay::{replay, ReplayConfig};
use bayesnn_fpga::serve::{ExitPolicy, InferenceServer, QuantEngine, ServeError, ServerConfig};
use bayesnn_fpga::tensor::exec::Executor;
use bayesnn_fpga::tensor::rng::Xoshiro256StarStar;
use bayesnn_fpga::tensor::Tensor;
use std::time::Duration;

#[test]
fn replayed_requests_are_all_served_and_correct() {
    const REQUESTS: usize = 300;
    const MC_SAMPLES: usize = 4;
    const MC_SEED: u64 = 2023;

    let network = zoo::lenet5(
        &ModelConfig::mnist()
            .with_resolution(10, 10)
            .with_width_divisor(8)
            .with_classes(4),
    )
    .with_exits_after_every_block()
    .unwrap()
    .with_exit_mcd(0.25)
    .unwrap()
    .build(3)
    .unwrap();
    let mut rng = Xoshiro256StarStar::seed_from_u64(13);
    let calib = Tensor::randn(&[8, 1, 10, 10], &mut rng);
    let calibrated = CalibratedNetwork::calibrate(&network, &calib).unwrap();
    let mut plan = calibrated
        .plan(FixedPointFormat::new(8, 3).unwrap())
        .unwrap();
    plan.set_executor(Executor::sequential());

    let pool: Vec<Vec<f32>> = Tensor::randn(&[8, 1, 10, 10], &mut rng)
        .as_slice()
        .chunks_exact(100)
        .map(<[f32]>::to_vec)
        .collect();
    let reference: Vec<Vec<f32>> = pool
        .iter()
        .map(|s| {
            let t = Tensor::from_vec(s.clone(), &[1, 1, 10, 10]).unwrap();
            plan.predict_probs_batch(&t, MC_SAMPLES, MC_SEED)
                .unwrap()
                .as_slice()
                .to_vec()
        })
        .collect();

    let server = InferenceServer::start(
        Box::new(QuantEngine::new(plan)),
        ServerConfig {
            workers: 2,
            max_batch: 8,
            max_delay: Duration::from_micros(500),
            mc_samples: MC_SAMPLES,
            seed: MC_SEED,
            policy: ExitPolicy::Never,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Out-of-range adaptive thresholds are rejected up front, typed.
    let reject_plan = calibrated
        .plan(FixedPointFormat::new(8, 3).unwrap())
        .unwrap();
    for bad in [f64::NAN, f64::INFINITY, -0.5, 1.5] {
        let config = ServerConfig::latency_biased(1, MC_SAMPLES, MC_SEED)
            .with_policy(ExitPolicy::Confidence { threshold: bad });
        assert!(
            matches!(
                InferenceServer::start(Box::new(QuantEngine::new(reject_plan.clone())), config),
                Err(ServeError::InvalidRequest(_))
            ),
            "threshold {bad} must be rejected"
        );
    }

    // Malformed submissions are rejected up front with typed errors.
    assert!(matches!(
        server.submit(&[0.0; 7]),
        Err(ServeError::InvalidRequest(_))
    ));

    let outcome = replay(
        &server,
        &pool,
        &ReplayConfig {
            requests: REQUESTS,
            rate_per_sec: 30_000.0,
            seed: 3,
        },
    )
    .unwrap();
    let stats = server.shutdown();

    assert_eq!(outcome.outputs.len(), REQUESTS);
    assert_eq!(
        stats.completed as usize, REQUESTS,
        "all responses delivered"
    );
    // Happy path: nothing failed, shed, expired, crashed or degraded.
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.deadline_missed, 0);
    assert_eq!(stats.crashes, 0);
    assert_eq!(stats.respawns, 0);
    assert_eq!(stats.quality_tier, 0);
    assert!(outcome.outputs.iter().all(|o| o.quality_tier == 0));
    assert!(stats.batches > 0 && stats.max_batch_seen <= 8);
    // Fixed-depth serving reports full-depth metadata on every reply.
    let n_exits = stats.exit_counts.len();
    assert!(n_exits >= 2);
    assert_eq!(stats.exit_counts[n_exits - 1] as usize, REQUESTS);
    assert_eq!(stats.ops_executed, stats.ops_fixed);
    assert!(stats.ops_fixed > 0);
    for (i, output) in outcome.outputs.iter().enumerate() {
        assert_eq!(
            &output.probs[..],
            &reference[i % pool.len()][..],
            "request {i}: served output differs from the direct plan call"
        );
        assert_eq!(output.exit_taken, n_exits - 1);
        assert_eq!(output.mc_samples, MC_SAMPLES);
    }

    let r = &outcome.report;
    assert_eq!(r.requests, REQUESTS);
    assert!(r.throughput_rps > 0.0);
    assert!(r.p50_latency <= r.p99_latency);
    assert!(!r.elapsed.is_zero());
}
