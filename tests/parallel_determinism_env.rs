//! `BNN_THREADS` environment-variable coverage of the determinism contract.
//!
//! This is a separate test binary (one `#[test]`, own process) on purpose:
//! it mutates the process environment, and `Executor::from_env` reads it
//! from worker threads throughout the stack — concurrent `setenv`/`getenv`
//! from sibling test threads would be undefined behavior on glibc.

use bayesnn_fpga::tensor::exec::{Executor, THREADS_ENV_VAR};

mod common;

#[test]
fn bnn_threads_env_var_is_honoured_and_preserves_results() {
    // `FrameworkConfig::threads` is None, so the executor resolves from the
    // environment. Everything in this process runs strictly sequentially
    // around the set_var calls.
    std::env::set_var(THREADS_ENV_VAR, "1");
    assert_eq!(Executor::from_env().threads(), 1);
    let (sequential, _) = common::run_pipeline(common::small_config());

    std::env::set_var(THREADS_ENV_VAR, "4");
    assert_eq!(Executor::from_env().threads(), 4);
    let (parallel, _) = common::run_pipeline(common::small_config());

    std::env::remove_var(THREADS_ENV_VAR);
    common::assert_artifacts_identical(&sequential, &parallel);
}
