//! Integration test: the full 4-phase transformation pipeline produces a
//! feasible accelerator design and a complete HLS project, driven through the
//! staged `PipelineSession` API.

use bayesnn_fpga::core::framework::FrameworkConfig;
use bayesnn_fpga::core::phase1::ModelVariant;
use bayesnn_fpga::core::pipeline::{PhaseId, PipelineSession};
use bayesnn_fpga::core::{OptPriority, UserConstraints};
use bayesnn_fpga::data::{DatasetSpec, SyntheticConfig};
use bayesnn_fpga::models::zoo::Architecture;
use bayesnn_fpga::models::ModelConfig;

fn small_config() -> FrameworkConfig {
    let mut config = FrameworkConfig::quick_demo(Architecture::LeNet5);
    config.phase1.model = ModelConfig::mnist()
        .with_resolution(10, 10)
        .with_width_divisor(8)
        .with_classes(4);
    config.phase1.dataset = SyntheticConfig::new(
        DatasetSpec::mnist_like()
            .with_resolution(10, 10)
            .with_classes(4),
    )
    .with_samples(96, 64);
    config.phase1.train.epochs = 3;
    config.phase1.variants = vec![ModelVariant::SingleExit, ModelVariant::McdMultiExit];
    config.phase1.confidence_thresholds = vec![0.8];
    config.phase3.reuse_factors = vec![16, 64];
    config
}

#[test]
fn pipeline_produces_feasible_design_and_project() {
    let config = small_config().with_priority(OptPriority::Energy);
    let mut session = PipelineSession::new(config).unwrap();

    // Drive the pipeline in two steps to exercise artifact caching: the
    // algorithmic phases first, then the rest.
    session.run_to(PhaseId::Phase2).unwrap();
    assert!(session.artifacts().phase1.is_some());
    assert!(session.artifacts().phase2.is_some());
    assert!(session.artifacts().phase3.is_none());
    assert_eq!(session.artifacts().latest_phase(), Some(PhaseId::Phase2));

    let outcome = session.run().unwrap();

    // Phase 1 explored both variants and produced sane metrics.
    assert_eq!(outcome.phase1.candidates.len(), 2);
    for candidate in &outcome.phase1.candidates {
        assert!((0.0..=1.0).contains(&candidate.metrics.evaluation.accuracy));
        assert!((0.0..=1.0).contains(&candidate.metrics.evaluation.ece));
    }

    // The phase 1 artifact carries every candidate's trained checkpoint, so
    // later phases (and resumed sessions) never retrain.
    let artifact1 = session.artifacts().phase1.as_ref().unwrap();
    assert_eq!(
        artifact1.candidate_checkpoints.len(),
        outcome.phase1.candidates.len()
    );

    // Hardware phases selected feasible points.
    assert!(outcome.phase2.best().feasible);
    assert!(outcome.phase3.best().feasible);

    // Phase 4 emitted the full project and a design that fits the device.
    let report = &outcome.phase4.report;
    assert!(report.fits);
    assert!(report.latency_ms > 0.0);
    assert!(report.power.total_w() > report.power.static_w);
    assert!(report.energy_per_image_j > 0.0);
    let project = &outcome.phase4.project;
    assert!(project
        .file("firmware/nnet_utils/nnet_mc_dropout.h")
        .is_some());
    assert!(project.file("build_prj.tcl").is_some());

    // The summary is printable and mentions the selected variant.
    let summary = outcome.summary();
    assert!(summary.contains("selected variant"));
}

#[test]
fn infeasible_constraints_surface_as_errors() {
    let config = small_config().with_constraints(UserConstraints::none().with_max_latency_ms(1e-9));
    let err = PipelineSession::new(config).unwrap().run().unwrap_err();
    let text = err.to_string();
    assert!(
        text.contains("no design satisfies the constraints"),
        "{text}"
    );
}
