//! Integration test: Phase 4 HLS generation works for every architecture in
//! the zoo and the emitted MCD template follows the paper's Algorithm 1.

use bayesnn_fpga::hls::{HlsConfig, HlsProject};
use bayesnn_fpga::models::zoo::Architecture;
use bayesnn_fpga::models::ModelConfig;
use bayesnn_fpga::quant::FixedPointFormat;

#[test]
fn every_architecture_generates_a_project() {
    let config = ModelConfig::cifar10()
        .with_resolution(16, 16)
        .with_width_divisor(8);
    for arch in Architecture::all() {
        let spec = arch
            .spec(&config)
            .with_exits_after_every_block()
            .unwrap()
            .with_exit_mcd(0.25)
            .unwrap();
        let project = HlsProject::generate(
            &spec,
            &HlsConfig::new(format!("bayes_{arch}"))
                .with_format(FixedPointFormat::new(8, 3).unwrap())
                .with_mc_samples(4),
        )
        .unwrap();
        let cpp = project.file(&format!("firmware/bayes_{arch}.cpp")).unwrap();
        assert!(cpp.contains("#pragma HLS DATAFLOW"), "{arch}");
        assert!(cpp.contains("nnet::mc_dropout"), "{arch}");
        let defines = project.file("firmware/defines.h").unwrap();
        assert!(defines.contains("ap_fixed<8,3>"), "{arch}");
    }
}

#[test]
fn mcd_template_matches_algorithm_1() {
    let spec = Architecture::LeNet5
        .spec(&ModelConfig::mnist().with_width_divisor(4))
        .with_mcd_layers(1, 0.25)
        .unwrap();
    let project = HlsProject::generate(&spec, &HlsConfig::new("alg1")).unwrap();
    let header = project
        .file("firmware/nnet_utils/nnet_mc_dropout.h")
        .unwrap();
    // Algorithm 1 structure: pipelined loop, uniform RNG, threshold against the
    // keep rate, multiply the kept value by the keep rate.
    assert!(header.contains("#pragma HLS PIPELINE II=1"));
    assert!(header.contains("uniform_random > keep_rate"));
    assert!(header.contains("temp * keep_rate"));
    assert!(header.contains("lfsr"));
}
