//! Fault-tolerance suite for the serving layer, driven by the seeded
//! fault-injection harness (`bnn_serve::fault`): worker-panic isolation and
//! supervision (no hung handles, poisoned mutexes recovered, respawned
//! workers serve subsequent traffic), deadline eviction, bounded-queue
//! backpressure, the graceful-degradation ladder, and the chaos acceptance
//! run — 2 of 4 workers panic mid-run under Poisson load while the server
//! keeps serving, every accepted request gets exactly one reply, and
//! surviving replies stay bit-exact with direct plan calls.
//!
//! Run under `BNN_THREADS=1` and `4` via `make test-robust`.

use bayesnn_fpga::models::{zoo, ExitPolicy, ModelConfig};
use bayesnn_fpga::quant::{CalibratedNetwork, FixedPointFormat, QuantPlan};
use bayesnn_fpga::serve::replay::{replay_under_faults, ReplayConfig};
use bayesnn_fpga::serve::{
    BatchEngine, DegradeConfig, FaultPlan, FaultyEngine, InferenceServer, QuantEngine, Reply,
    ResponseHandle, ServeError, ServerConfig,
};
use bayesnn_fpga::tensor::exec::Executor;
use bayesnn_fpga::tensor::rng::Xoshiro256StarStar;
use bayesnn_fpga::tensor::Tensor;
use std::sync::Once;
use std::time::Duration;

const MC_SAMPLES: usize = 4;
const MC_SEED: u64 = 2023;
/// Generous bound on every wait: a hung handle fails the test in bounded
/// time instead of hanging the suite.
const WAIT: Duration = Duration::from_secs(20);

/// Injected panics are expected here; keep their backtraces out of the test
/// output while forwarding every real panic to the default hook.
fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// The small quantized multi-exit LeNet-5 of the serving suites (10x10,
/// width/8, 4 classes, 2 exits; 100 input elements per sample).
fn small_plan() -> QuantPlan {
    let network = zoo::lenet5(
        &ModelConfig::mnist()
            .with_resolution(10, 10)
            .with_width_divisor(8)
            .with_classes(4),
    )
    .with_exits_after_every_block()
    .unwrap()
    .with_exit_mcd(0.25)
    .unwrap()
    .build(3)
    .unwrap();
    let mut rng = Xoshiro256StarStar::seed_from_u64(13);
    let calib = Tensor::randn(&[8, 1, 10, 10], &mut rng);
    let calibrated = CalibratedNetwork::calibrate(&network, &calib).unwrap();
    let mut plan = calibrated
        .plan(FixedPointFormat::new(8, 3).unwrap())
        .unwrap();
    plan.set_executor(Executor::sequential());
    plan
}

fn pool(samples: usize) -> Vec<Vec<f32>> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(17);
    Tensor::randn(&[samples, 1, 10, 10], &mut rng)
        .as_slice()
        .chunks_exact(100)
        .map(<[f32]>::to_vec)
        .collect()
}

/// Direct single-sample plan call at an explicit `(mc, policy)` quality —
/// the bit-exactness reference for replies served at any tier.
fn reference(plan: &QuantPlan, sample: &[f32], mc: usize, policy: &ExitPolicy) -> Vec<f32> {
    let mut plan = plan.clone();
    let t = Tensor::from_vec(sample.to_vec(), &[1, 1, 10, 10]).unwrap();
    if policy.is_never() {
        plan.predict_probs_batch(&t, mc, MC_SEED)
            .unwrap()
            .as_slice()
            .to_vec()
    } else {
        plan.predict_adaptive_batch(&t, mc, MC_SEED, policy)
            .unwrap()
            .probs
            .as_slice()
            .to_vec()
    }
}

fn faulty_engine(plan: &QuantPlan, faults: FaultPlan) -> Box<dyn BatchEngine> {
    Box::new(FaultyEngine::new(
        Box::new(QuantEngine::new(plan.clone())),
        faults,
    ))
}

fn wait_all(handles: Vec<ResponseHandle>) -> Vec<Result<Reply, ServeError>> {
    handles.into_iter().map(|h| h.wait_timeout(WAIT)).collect()
}

/// A worker panic fails exactly its batch with `WorkerCrashed` (no handle
/// hangs), the shared mutexes stay usable, the supervisor respawns the
/// worker from a fresh fork, and the respawn serves subsequent traffic
/// bit-exactly.
#[test]
fn worker_panic_recovery_without_hung_handles() {
    silence_injected_panics();
    let plan = small_plan();
    let pool = pool(6);
    let server = InferenceServer::start(
        faulty_engine(&plan, FaultPlan::new().panic_on(0, 0)),
        ServerConfig {
            workers: 1,
            max_batch: 4,
            max_delay: Duration::from_micros(200),
            mc_samples: MC_SAMPLES,
            seed: MC_SEED,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let first_wave: Vec<_> = (0..12)
        .map(|i| server.submit(&pool[i % pool.len()]).unwrap())
        .collect();
    let results = wait_all(first_wave);
    // The mutexes the panicking worker may have poisoned are recovered.
    let mid_stats = server.stats();
    assert_eq!(mid_stats.crashes, 1, "exactly the injected panic");
    assert_eq!(mid_stats.respawns, 1, "the supervisor replaced the worker");

    let mut crashed = 0usize;
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(reply) => {
                assert_eq!(
                    reply.probs,
                    reference(&plan, &pool[i % pool.len()], MC_SAMPLES, &ExitPolicy::Never),
                    "request {i}: post-crash reply differs from the direct plan call"
                );
            }
            Err(ServeError::WorkerCrashed(msg)) => {
                assert!(msg.contains("injected fault"), "unexpected crash: {msg}");
                crashed += 1;
            }
            Err(other) => panic!("request {i}: unexpected error {other}"),
        }
    }
    assert!(
        crashed >= 1,
        "the panicked batch must fail its requests with WorkerCrashed"
    );

    // The respawned worker (a fresh fault-free fork) serves a second wave.
    let second_wave: Vec<_> = (0..8)
        .map(|i| server.submit(&pool[i % pool.len()]).unwrap())
        .collect();
    for (i, result) in wait_all(second_wave).into_iter().enumerate() {
        let reply = result.unwrap_or_else(|e| panic!("post-respawn request {i} failed: {e}"));
        assert_eq!(
            reply.probs,
            reference(&plan, &pool[i % pool.len()], MC_SAMPLES, &ExitPolicy::Never)
        );
    }

    let stats = server.shutdown();
    assert_eq!(stats.crashes, 1);
    assert_eq!(stats.respawns, 1);
    assert_eq!(stats.failed, crashed as u64);
    assert_eq!(stats.completed, 20 - crashed as u64);
}

/// With the respawn budget exhausted, the last crash marks the pool dead:
/// every pending request is failed (nothing hangs) and new submissions are
/// rejected with a typed `WorkerCrashed`.
#[test]
fn exhausted_respawn_budget_fails_pending_and_rejects() {
    silence_injected_panics();
    let plan = small_plan();
    let pool = pool(4);
    let server = InferenceServer::start(
        faulty_engine(&plan, FaultPlan::new().panic_on(0, 0)),
        ServerConfig {
            workers: 1,
            max_batch: 2,
            max_delay: Duration::from_micros(200),
            mc_samples: MC_SAMPLES,
            seed: MC_SEED,
            max_respawns: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // The crash can race the submit loop: once the pool is marked dead,
    // submissions are rejected up front with the same typed error.
    let mut handles = Vec::new();
    let mut rejected_at_submit = 0usize;
    for i in 0..8 {
        match server.submit(&pool[i % pool.len()]) {
            Ok(handle) => handles.push(handle),
            Err(ServeError::WorkerCrashed(_)) => rejected_at_submit += 1,
            Err(e) => panic!("unexpected submit error {e}"),
        }
    }
    let accepted = handles.len();
    assert!(accepted >= 1, "the crashing batch needed at least one job");
    assert_eq!(accepted + rejected_at_submit, 8);
    // Every accepted request resolves (crashed batch or failed-pending
    // sweep); nothing waits forever.
    for (i, result) in wait_all(handles).into_iter().enumerate() {
        assert!(
            matches!(result, Err(ServeError::WorkerCrashed(_))),
            "request {i}: expected WorkerCrashed, got {result:?}"
        );
    }
    // Submissions are now rejected up front (give the supervisor a moment
    // to finish marking the pool dead).
    let mut rejected = false;
    let mut raced = 0usize;
    for _ in 0..100 {
        match server.submit(&pool[0]) {
            Err(ServeError::WorkerCrashed(_)) => {
                rejected = true;
                break;
            }
            Err(e) => panic!("unexpected rejection {e}"),
            Ok(handle) => {
                // Raced the dead-pool sweep: the accepted request must
                // still resolve, with the crash error.
                raced += 1;
                assert!(matches!(
                    handle.wait_timeout(WAIT),
                    Err(ServeError::WorkerCrashed(_))
                ));
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(rejected, "dead pool must reject new submissions");

    let stats = server.shutdown();
    assert_eq!(stats.crashes, 1);
    assert_eq!(stats.respawns, 0);
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.failed, (accepted + raced) as u64);
}

/// A typed engine error fails its batch but does NOT kill the worker: no
/// crash, no respawn, and the same worker keeps serving.
#[test]
fn engine_error_fails_batch_without_crashing_worker() {
    let plan = small_plan();
    let pool = pool(4);
    let server = InferenceServer::start(
        faulty_engine(&plan, FaultPlan::new().error_on(0, 0, "transient")),
        ServerConfig {
            workers: 1,
            max_batch: 4,
            max_delay: Duration::from_micros(200),
            mc_samples: MC_SAMPLES,
            seed: MC_SEED,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let results = wait_all(
        (0..12)
            .map(|i| server.submit(&pool[i % pool.len()]).unwrap())
            .collect(),
    );
    let errored = results
        .iter()
        .filter(|r| matches!(r, Err(ServeError::Engine(_))))
        .count();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    assert!(errored >= 1, "the injected engine error must surface");
    assert_eq!(errored + ok, 12, "no other failure mode");

    let stats = server.shutdown();
    assert_eq!(stats.crashes, 0, "an engine error is not a crash");
    assert_eq!(stats.respawns, 0);
    assert_eq!(stats.failed, errored as u64);
    assert_eq!(stats.completed, ok as u64);
}

/// Requests whose deadline expires while queued behind a slow batch are
/// evicted at the next assembly with `DeadlineExceeded`; requests without a
/// deadline ride out the delay.
#[test]
fn expired_deadlines_are_evicted_at_assembly() {
    let plan = small_plan();
    let pool = pool(4);
    let server = InferenceServer::start(
        // The first batch stalls 400 ms — long enough for queued deadlines
        // to expire behind it.
        faulty_engine(
            &plan,
            FaultPlan::new().delay_on(0, 0, Duration::from_millis(400)),
        ),
        ServerConfig {
            workers: 1,
            max_batch: 4,
            max_delay: Duration::ZERO,
            mc_samples: MC_SAMPLES,
            seed: MC_SEED,
            deadline: Some(Duration::from_millis(50)),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // No-deadline override: rides into the slow batch and survives it.
    let slow = server.submit_with_deadline(&pool[0], None).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // These use the 50 ms config default and expire while the worker stalls.
    let doomed_default = server.submit(&pool[1]).unwrap();
    // Explicit override, also far shorter than the remaining stall.
    let doomed_override = server
        .submit_with_deadline(&pool[2], Some(Duration::from_millis(10)))
        .unwrap();
    // Generous override: survives the stall and is served afterwards.
    let patient = server
        .submit_with_deadline(&pool[3], Some(Duration::from_secs(30)))
        .unwrap();

    let slow_reply = slow.wait_timeout(WAIT).expect("stalled batch still serves");
    assert_eq!(
        slow_reply.probs,
        reference(&plan, &pool[0], MC_SAMPLES, &ExitPolicy::Never)
    );
    assert_eq!(
        doomed_default.wait_timeout(WAIT),
        Err(ServeError::DeadlineExceeded)
    );
    assert_eq!(
        doomed_override.wait_timeout(WAIT),
        Err(ServeError::DeadlineExceeded)
    );
    let patient_reply = patient.wait_timeout(WAIT).expect("generous deadline holds");
    assert_eq!(
        patient_reply.probs,
        reference(&plan, &pool[3], MC_SAMPLES, &ExitPolicy::Never)
    );

    let stats = server.shutdown();
    assert_eq!(stats.deadline_missed, 2);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 0, "evictions are not batch failures");
}

/// The bounded queue sheds with a typed `Overloaded` at the submit
/// boundary; accepted requests are unaffected.
#[test]
fn bounded_queue_rejects_with_overloaded() {
    let plan = small_plan();
    let pool = pool(4);
    let server = InferenceServer::start(
        faulty_engine(
            &plan,
            FaultPlan::new().delay_on(0, 0, Duration::from_millis(300)),
        ),
        ServerConfig {
            workers: 1,
            max_batch: 1,
            max_delay: Duration::ZERO,
            mc_samples: MC_SAMPLES,
            seed: MC_SEED,
            queue_limit: Some(2),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // First request occupies the (stalled) worker...
    let in_flight = server.submit(&pool[0]).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    // ...the next two fill the bounded queue...
    let queued_a = server.submit(&pool[1]).unwrap();
    let queued_b = server.submit(&pool[2]).unwrap();
    // ...and the fourth is shed, typed.
    assert_eq!(server.submit(&pool[3]).err(), Some(ServeError::Overloaded));

    for (i, handle) in [(0, in_flight), (1, queued_a), (2, queued_b)] {
        let reply = handle.wait_timeout(WAIT).expect("accepted requests serve");
        assert_eq!(
            reply.probs,
            reference(&plan, &pool[i], MC_SAMPLES, &ExitPolicy::Never)
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 0);
}

/// Under a sustained burst the hysteresis controller steps down the quality
/// ladder (fewer MC samples, then aggressive early exit) instead of
/// shedding; when pressure clears it steps back up. Every reply reports its
/// tier and stays bit-exact with a direct plan call at that tier's quality.
#[test]
fn degradation_ladder_steps_down_and_recovers() {
    let plan = small_plan();
    let pool = pool(4);
    let tier_quality = [
        (MC_SAMPLES, ExitPolicy::Never),
        (2, ExitPolicy::Never),
        (2, ExitPolicy::Confidence { threshold: 0.5 }),
    ];
    let server = InferenceServer::start(
        Box::new(QuantEngine::new(plan.clone())),
        ServerConfig {
            workers: 1,
            max_batch: 2,
            max_delay: Duration::ZERO,
            mc_samples: MC_SAMPLES,
            seed: MC_SEED,
            degrade: Some(
                DegradeConfig::new(4, 1)
                    .with_step(tier_quality[1].0, tier_quality[1].1)
                    .with_step(tier_quality[2].0, tier_quality[2].1),
            ),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // Tight hysteresis so a short test exercises both directions.
    assert_eq!(
        server.config().degrade.as_ref().unwrap().step_down_batches,
        2
    );

    // Phase 1 — a burst far above the high watermark: the controller must
    // step down (max_batch 2 means the 60-deep queue is observed high many
    // consecutive times).
    let burst = wait_all(
        (0..60)
            .map(|i| server.submit(&pool[i % pool.len()]).unwrap())
            .collect(),
    );
    // Phase 2 — a slow trickle at depth 1 (at/below the low watermark):
    // the controller must recover to full quality.
    let mut trickle = Vec::new();
    for i in 0..24 {
        let handle = server.submit(&pool[i % pool.len()]).unwrap();
        trickle.push(handle.wait_timeout(WAIT));
    }

    let stats = server.shutdown();
    assert!(
        stats.degrade_steps_down >= 2,
        "burst must walk down the ladder: {stats:?}"
    );
    assert!(
        stats.degrade_steps_up >= 2,
        "trickle must walk back up: {stats:?}"
    );
    assert_eq!(stats.quality_tier, 0, "recovered to full quality");

    let mut seen_tiers = [0u64; 3];
    for (i, result) in burst.iter().chain(trickle.iter()).enumerate() {
        let reply = result
            .as_ref()
            .unwrap_or_else(|e| panic!("request {i}: {e}"));
        let tier = reply.quality_tier;
        assert!(tier < 3, "request {i}: tier {tier} out of range");
        seen_tiers[tier] += 1;
        let (mc, policy) = &tier_quality[tier];
        assert_eq!(
            reply.probs,
            reference(&plan, &pool[i % pool.len()], *mc, policy),
            "request {i}: tier-{tier} reply differs from the direct plan call at that quality"
        );
    }
    assert!(seen_tiers[0] > 0, "some requests at full quality");
    assert!(
        seen_tiers[1] + seen_tiers[2] > 0,
        "some requests served degraded: {seen_tiers:?}"
    );
    assert_eq!(stats.tier_counts, seen_tiers.to_vec());
    assert_eq!(stats.completed, 84);
    assert_eq!(stats.rejected + stats.failed + stats.deadline_missed, 0);
}

/// Acceptance chaos run: a seeded fault plan panics 2 of 4 workers mid-run
/// under Poisson load. The server keeps serving, every accepted request
/// receives exactly one reply (no handle waits forever), surviving replies
/// are bit-exact with direct plan calls, and `ServeStats` reports exactly
/// the crashes, respawns, deadline misses and sheds it observed.
#[test]
fn chaos_two_of_four_workers_panic_under_poisson_load() {
    silence_injected_panics();
    const REQUESTS: usize = 600;
    let plan = small_plan();
    let pool = pool(8);
    let references: Vec<Vec<f32>> = pool
        .iter()
        .map(|s| reference(&plan, s, MC_SAMPLES, &ExitPolicy::Never))
        .collect();

    // Workers 0 and 1 panic on their second batch — mid-run, while the
    // Poisson stream keeps arriving.
    let faults = FaultPlan::new().panic_on(0, 1).panic_on(1, 1);
    let server = InferenceServer::start(
        faulty_engine(&plan, faults),
        ServerConfig {
            workers: 4,
            max_batch: 8,
            max_delay: Duration::from_micros(500),
            mc_samples: MC_SAMPLES,
            seed: MC_SEED,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let outcome = replay_under_faults(
        &server,
        &pool,
        &ReplayConfig {
            requests: REQUESTS,
            rate_per_sec: 30_000.0,
            seed: 11,
        },
        WAIT,
    )
    .unwrap();

    // Exactly one resolution per request, none by timeout: the
    // delivery guarantee held for every accepted request.
    assert_eq!(outcome.outcomes.len(), REQUESTS);
    assert_eq!(outcome.timed_out, 0, "a handle waited forever");
    assert_eq!(outcome.rejected, 0, "queue is unbounded here");
    assert_eq!(outcome.delivered + outcome.failed, REQUESTS);
    assert!(
        outcome.failed >= 2,
        "two panicked batches must fail their requests"
    );

    for (i, result) in outcome.outcomes.iter().enumerate() {
        match result {
            Ok(reply) => assert_eq!(
                reply.probs,
                references[i % pool.len()],
                "request {i}: survivor reply not bit-exact with the direct plan call"
            ),
            Err(ServeError::WorkerCrashed(msg)) => {
                assert!(msg.contains("injected fault"), "unexpected crash: {msg}")
            }
            Err(other) => panic!("request {i}: unexpected failure {other}"),
        }
    }

    // The server is still alive after the chaos: fresh traffic serves.
    let post = server.submit(&pool[0]).unwrap().wait_timeout(WAIT).unwrap();
    assert_eq!(post.probs, references[0]);

    let stats = server.shutdown();
    assert_eq!(stats.crashes, 2, "both injected panics observed: {stats:?}");
    assert_eq!(stats.respawns, 2, "both workers respawned: {stats:?}");
    assert_eq!(stats.completed, outcome.delivered as u64 + 1);
    assert_eq!(stats.failed, outcome.failed as u64);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.deadline_missed, 0);
}
