//! Allocation audit of the compiled execution plans: after a warm-up call
//! sizes the arena, planned integer prediction must perform **zero** heap
//! allocations per call (on a sequential executor — the thread-pool fan-out
//! of large kernels allocates its scoped workers by design, which is why
//! this binary pins the plan to `Executor::sequential()`; results are
//! bitwise identical either way).
//!
//! This lives in its own integration-test binary because the counting
//! allocator is process-global.

use bayesnn_fpga::models::{zoo, ExitPolicy, ModelConfig};
use bayesnn_fpga::quant::{CalibratedNetwork, FixedPointFormat};
use bayesnn_fpga::tensor::exec::Executor;
use bayesnn_fpga::tensor::rng::Xoshiro256StarStar;
use bayesnn_fpga::tensor::Tensor;

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

/// The allocation counter is process-global, so the audits in this binary
/// must not run concurrently — each holds this lock while measuring.
static AUDIT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn planned_predict_probs_is_allocation_free_after_warmup() {
    let _guard = AUDIT_LOCK.lock().unwrap();
    // The counter must be live: an ordinary allocation registers.
    let before = alloc_counter::allocation_count();
    let probe = vec![0u8; 4096];
    std::hint::black_box(&probe);
    assert!(
        alloc_counter::allocation_count() > before,
        "counting allocator is not installed"
    );

    let spec = zoo::lenet5(
        &ModelConfig::mnist()
            .with_resolution(10, 10)
            .with_width_divisor(8)
            .with_classes(4),
    )
    .with_exits_after_every_block()
    .unwrap()
    .with_exit_mcd(0.25)
    .unwrap();
    let network = spec.build(3).unwrap();
    let mut rng = Xoshiro256StarStar::seed_from_u64(1);
    let calib = Tensor::randn(&[8, 1, 10, 10], &mut rng);
    let calibrated = CalibratedNetwork::calibrate(&network, &calib).unwrap();

    for format in [
        FixedPointFormat::new(8, 3).unwrap(),
        FixedPointFormat::new(16, 6).unwrap(),
    ] {
        let mut plan = calibrated.plan(format).unwrap();
        plan.set_executor(Executor::sequential());
        let inputs = Tensor::randn(&[4, 1, 10, 10], &mut rng);
        let mut out = Vec::new();

        // Warm-up: sizes every arena buffer (slots, im2col scratch,
        // accumulators, masks, softmax staging) and the output buffer.
        plan.predict_probs_into(&inputs, 6, 2023, &mut out).unwrap();
        let warm = out.clone();

        // Steady state: bit-identical result, zero allocations.
        let before = alloc_counter::allocation_count();
        plan.predict_probs_into(&inputs, 6, 2023, &mut out).unwrap();
        let allocations = alloc_counter::allocation_count() - before;
        assert_eq!(
            allocations, 0,
            "steady-state planned predict_probs allocated {allocations} time(s) ({format})"
        );
        assert_eq!(out, warm, "steady-state result must not drift ({format})");

        // A smaller batch stays inside the warmed arena too.
        let small = Tensor::randn(&[2, 1, 10, 10], &mut rng);
        plan.predict_probs_into(&small, 6, 2023, &mut out).unwrap();
        let before = alloc_counter::allocation_count();
        plan.predict_probs_into(&small, 6, 2023, &mut out).unwrap();
        assert_eq!(
            alloc_counter::allocation_count() - before,
            0,
            "smaller-batch steady state must not allocate ({format})"
        );
    }
}

/// The serving path's batched entry point gets the same guarantee: after
/// `ensure_batch(N)` and one warm-up call, `predict_probs_batch_into` at
/// batch N (and below) performs zero heap allocations — this is what lets
/// serving workers run allocation-free at their configured max batch.
#[test]
fn batched_predict_is_allocation_free_at_max_batch() {
    let _guard = AUDIT_LOCK.lock().unwrap();
    const MAX_BATCH: usize = 4;
    let spec = zoo::lenet5(
        &ModelConfig::mnist()
            .with_resolution(10, 10)
            .with_width_divisor(8)
            .with_classes(4),
    )
    .with_exits_after_every_block()
    .unwrap()
    .with_exit_mcd(0.25)
    .unwrap();
    let network = spec.build(3).unwrap();
    let mut rng = Xoshiro256StarStar::seed_from_u64(9);
    let calib = Tensor::randn(&[8, 1, 10, 10], &mut rng);
    let calibrated = CalibratedNetwork::calibrate(&network, &calib).unwrap();

    for format in [
        FixedPointFormat::new(8, 3).unwrap(),
        FixedPointFormat::new(16, 6).unwrap(),
    ] {
        let mut plan = calibrated.plan(format).unwrap();
        plan.set_executor(Executor::sequential());
        plan.ensure_batch(MAX_BATCH);
        let inputs = Tensor::randn(&[MAX_BATCH, 1, 10, 10], &mut rng);
        let mut out = Vec::new();

        // Warm-up sizes the remaining per-call staging and the output.
        plan.predict_probs_batch_into(&inputs, 6, 2023, &mut out)
            .unwrap();
        let warm = out.clone();

        let before = alloc_counter::allocation_count();
        plan.predict_probs_batch_into(&inputs, 6, 2023, &mut out)
            .unwrap();
        let allocations = alloc_counter::allocation_count() - before;
        assert_eq!(
            allocations, 0,
            "steady-state batched predict allocated {allocations} time(s) ({format})"
        );
        assert_eq!(out, warm, "steady-state batched result drifted ({format})");

        // Partial batches — what the deadline-fired server path produces —
        // stay inside the arena sized for the max batch.
        let small = Tensor::randn(&[MAX_BATCH - 2, 1, 10, 10], &mut rng);
        plan.predict_probs_batch_into(&small, 6, 2023, &mut out)
            .unwrap();
        let before = alloc_counter::allocation_count();
        plan.predict_probs_batch_into(&small, 6, 2023, &mut out)
            .unwrap();
        assert_eq!(
            alloc_counter::allocation_count() - before,
            0,
            "partial-batch steady state must not allocate ({format})"
        );
    }
}

/// The adaptive early-exit path keeps the zero-allocation guarantee:
/// retirement scatters and survivor compaction run entirely inside the
/// arena (`acc`, `live_idx` and the frontier slot are all pre-sized by
/// `ensure_batch` + warm-up), so a mixed retire pattern — some rows out at
/// the first exit, stragglers compacted and served to full depth — costs
/// zero steady-state heap allocations.
#[test]
fn adaptive_batched_predict_is_allocation_free_after_warmup() {
    let _guard = AUDIT_LOCK.lock().unwrap();
    const MAX_BATCH: usize = 4;
    let spec = zoo::lenet5(
        &ModelConfig::mnist()
            .with_resolution(10, 10)
            .with_width_divisor(8)
            .with_classes(4),
    )
    .with_exits_after_every_block()
    .unwrap()
    .with_exit_mcd(0.25)
    .unwrap();
    let network = spec.build(3).unwrap();
    let mut rng = Xoshiro256StarStar::seed_from_u64(17);
    let calib = Tensor::randn(&[8, 1, 10, 10], &mut rng);
    let calibrated = CalibratedNetwork::calibrate(&network, &calib).unwrap();

    for format in [
        FixedPointFormat::new(8, 3).unwrap(),
        FixedPointFormat::new(16, 6).unwrap(),
    ] {
        let mut plan = calibrated.plan(format).unwrap();
        plan.set_executor(Executor::sequential());
        plan.ensure_batch(MAX_BATCH);
        let inputs = Tensor::randn(&[MAX_BATCH, 1, 10, 10], &mut rng);
        let mut out = Vec::new();
        let mut exits = Vec::new();

        // Calibrate a threshold that yields a mixed retire pattern: the
        // midpoint of the batch's first-exit confidences retires some rows
        // at exit 0 and compacts the rest to full depth.
        let policy = {
            let probe = ExitPolicy::Confidence { threshold: 0.0 };
            plan.predict_adaptive_batch_into(&inputs, 6, 2023, &probe, &mut out, &mut exits)
                .unwrap();
            let classes = out.len() / MAX_BATCH;
            let confs: Vec<f32> = out
                .chunks_exact(classes)
                .map(|r| r.iter().copied().fold(f32::NEG_INFINITY, f32::max))
                .collect();
            let min = confs.iter().copied().fold(f32::INFINITY, f32::min);
            let max = confs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            assert!(min < max, "probe confidences are degenerate ({format})");
            ExitPolicy::Confidence {
                threshold: f64::from((min + max) / 2.0),
            }
        };

        // Warm-up sizes the staging, output and exit buffers.
        plan.predict_adaptive_batch_into(&inputs, 6, 2023, &policy, &mut out, &mut exits)
            .unwrap();
        let warm = out.clone();
        let warm_exits = exits.clone();
        assert!(
            warm_exits.contains(&0) && warm_exits.iter().any(|&e| e != 0),
            "retire pattern must be mixed for a meaningful audit ({format}): {warm_exits:?}"
        );

        let before = alloc_counter::allocation_count();
        plan.predict_adaptive_batch_into(&inputs, 6, 2023, &policy, &mut out, &mut exits)
            .unwrap();
        let allocations = alloc_counter::allocation_count() - before;
        assert_eq!(
            allocations, 0,
            "steady-state adaptive predict allocated {allocations} time(s) ({format})"
        );
        assert_eq!(out, warm, "steady-state adaptive result drifted ({format})");
        assert_eq!(
            exits, warm_exits,
            "steady-state exit choices drifted ({format})"
        );

        // Partial batches stay inside the warmed arena too.
        let small = Tensor::randn(&[MAX_BATCH - 2, 1, 10, 10], &mut rng);
        plan.predict_adaptive_batch_into(&small, 6, 2023, &policy, &mut out, &mut exits)
            .unwrap();
        let before = alloc_counter::allocation_count();
        plan.predict_adaptive_batch_into(&small, 6, 2023, &policy, &mut out, &mut exits)
            .unwrap();
        assert_eq!(
            alloc_counter::allocation_count() - before,
            0,
            "partial-batch adaptive steady state must not allocate ({format})"
        );
    }
}
