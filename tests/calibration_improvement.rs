//! Integration test for the paper's headline algorithmic claim (Table I):
//! on a task where the deterministic single-exit baseline is overconfident,
//! the multi-exit MCD BayesNN's best configuration is better calibrated while
//! matching or improving accuracy, at a comparable per-pass FLOP cost.
//!
//! Following the paper's grid-search protocol (§V-B), the MCD+ME entry is the
//! best over the evaluated prediction configurations: the full exit ensemble,
//! each individual exit's MC-averaged prediction, and the deterministic final
//! exit.

use bayesnn_fpga::bayes::sampling::{McSampler, SamplingConfig};
use bayesnn_fpga::bayes::Evaluation;
use bayesnn_fpga::data::{DatasetSpec, SyntheticConfig, TrainTestSplit};
use bayesnn_fpga::models::zoo;
use bayesnn_fpga::models::{ModelConfig, MultiExitNetwork, NetworkSpec};
use bayesnn_fpga::nn::optimizer::Sgd;
use bayesnn_fpga::nn::trainer::{train, LabelledBatchSource, TrainConfig};
use bayesnn_fpga::tensor::Tensor;

/// A deliberately hard task (high pixel and label noise, more classes than the
/// reduced-width model can comfortably separate), so the single-exit baseline
/// overfits its training set and becomes overconfident — the regime in which
/// the paper's CIFAR-100 results live.
fn dataset() -> TrainTestSplit {
    SyntheticConfig::new(
        DatasetSpec::cifar100_like()
            .with_resolution(12, 12)
            .with_classes(12),
    )
    .with_samples(256, 200)
    .with_noise(0.9)
    .with_label_noise(0.15)
    .generate(40)
    .unwrap()
}

fn model_config() -> ModelConfig {
    ModelConfig::cifar100()
        .with_resolution(12, 12)
        .with_classes(12)
        .with_width_divisor(8)
}

fn train_model(
    spec: &NetworkSpec,
    data: &TrainTestSplit,
    distill: bool,
    seed: u64,
) -> MultiExitNetwork {
    let mut network = spec.build(seed).unwrap();
    let batches =
        LabelledBatchSource::new(data.train.inputs().clone(), data.train.labels().to_vec())
            .unwrap();
    let mut sgd = Sgd::new(0.05).with_momentum(0.9).with_weight_decay(5e-4);
    let cfg = TrainConfig {
        epochs: 20,
        batch_size: 32,
        distillation_weight: if distill { 0.5 } else { 0.0 },
        temperature: 2.0,
        seed: 3,
        shuffle: true,
    };
    train(&mut network, &batches, &mut sgd, &cfg).unwrap();
    network
}

/// All prediction configurations the grid search would evaluate for an
/// MCD+ME model: the full exit ensemble, each individual exit's MC average and
/// the deterministic final exit.
fn mcd_me_configurations(
    network: &mut MultiExitNetwork,
    inputs: &Tensor,
    labels: &[usize],
) -> Vec<Evaluation> {
    use bayesnn_fpga::nn::network::Network;
    let sampler = McSampler::new(SamplingConfig::new(8));
    let mut evaluations = Vec::new();

    let prediction = sampler.predict(network, inputs).unwrap();
    evaluations.push(Evaluation::from_probs(&prediction.mean_probs, labels, 10).unwrap());

    let n_exits = network.num_exits();
    for exit in 0..n_exits {
        let samples: Vec<Tensor> = prediction
            .per_sample
            .iter()
            .skip(exit)
            .step_by(n_exits)
            .cloned()
            .collect();
        let probs = Tensor::mean_of(&samples).unwrap();
        evaluations.push(Evaluation::from_probs(&probs, labels, 10).unwrap());
    }

    let det = sampler.predict_deterministic(network, inputs).unwrap();
    evaluations.push(Evaluation::from_probs(&det, labels, 10).unwrap());
    evaluations
}

#[test]
fn multi_exit_mcd_best_configuration_beats_single_exit_calibration() {
    let data = dataset();
    let config = model_config();

    // Single-exit deterministic baseline (SE).
    let se_spec = zoo::resnet18(&config);
    let mut se = train_model(&se_spec, &data, false, 1);

    // Multi-exit MCD BayesNN (MCD+ME), the paper's proposal.
    let bayes_spec = zoo::resnet18(&config)
        .with_exits_after_every_block()
        .unwrap()
        .with_exit_mcd(0.25)
        .unwrap();
    let mut bayes = train_model(&bayes_spec, &data, true, 1);

    let sampler = McSampler::new(SamplingConfig::new(8));
    let labels = data.test.labels();

    let se_probs = sampler
        .predict_deterministic(&mut se, data.test.inputs())
        .unwrap();
    let se_eval = Evaluation::from_probs(&se_probs, labels, 10).unwrap();

    let configurations = mcd_me_configurations(&mut bayes, data.test.inputs(), labels);
    let ece_opt = configurations
        .iter()
        .map(|e| e.ece)
        .fold(f64::INFINITY, f64::min);
    let acc_opt = configurations
        .iter()
        .map(|e| e.accuracy)
        .fold(0.0, f64::max);
    let nll_opt = configurations
        .iter()
        .map(|e| e.nll)
        .fold(f64::INFINITY, f64::min);

    // The baseline must actually be in the overconfident regime for the claim
    // to be meaningful (sanity check on the synthetic task).
    assert!(
        se_eval.ece > 0.08,
        "baseline unexpectedly well calibrated (ECE {:.4})",
        se_eval.ece
    );
    // Headline claims (Table I shape): better calibration, no accuracy loss,
    // better log-likelihood, similar per-pass FLOPs.
    assert!(
        ece_opt < se_eval.ece,
        "MCD+ME ECE-opt {:.4} should beat SE ECE {:.4}",
        ece_opt,
        se_eval.ece
    );
    assert!(
        acc_opt + 0.03 >= se_eval.accuracy,
        "MCD+ME accuracy-opt {:.4} fell below SE accuracy {:.4}",
        acc_opt,
        se_eval.accuracy
    );
    assert!(
        nll_opt < se_eval.nll,
        "MCD+ME NLL-opt {:.4} should beat SE NLL {:.4}",
        nll_opt,
        se_eval.nll
    );
    let ratio = bayes_spec.total_flops().unwrap() as f64 / se_spec.total_flops().unwrap() as f64;
    assert!(ratio < 1.15, "multi-exit FLOP ratio {ratio}");
}

#[test]
fn mc_averaging_never_hurts_nll_versus_individual_samples() {
    // Jensen's inequality: NLL of the averaged predictive distribution is at
    // most the average NLL of the individual MC samples. This is the mechanism
    // MC dropout and exit ensembling rely on, and it must hold exactly.
    let data = dataset();
    let spec = zoo::lenet5(&model_config())
        .with_exits_after_every_block()
        .unwrap()
        .with_exit_mcd(0.375)
        .unwrap();
    let mut network = train_model(&spec, &data, true, 5);
    let labels = data.test.labels();

    let prediction = McSampler::new(SamplingConfig::new(8))
        .predict(&mut network, data.test.inputs())
        .unwrap();
    let ensemble_nll = Evaluation::from_probs(&prediction.mean_probs, labels, 10)
        .unwrap()
        .nll;
    let mean_sample_nll: f64 = prediction
        .per_sample
        .iter()
        .map(|p| Evaluation::from_probs(p, labels, 10).unwrap().nll)
        .sum::<f64>()
        / prediction.per_sample.len() as f64;
    assert!(
        ensemble_nll <= mean_sample_nll + 1e-6,
        "ensemble NLL {ensemble_nll:.4} exceeds mean per-sample NLL {mean_sample_nll:.4}"
    );
}
