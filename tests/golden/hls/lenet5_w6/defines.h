#ifndef DEFINES_H_
#define DEFINES_H_

#include "ap_fixed.h"
#include "ap_int.h"

// Per-tensor calibrated fixed-point formats (one typedef per value).
typedef ap_fixed<6,3> input_t; // calibrated input, scale 2^-3
typedef ap_fixed<6,4> v0_t; // step 0 conv2d out, scale 2^-2
typedef ap_fixed<6,4> v1_t; // step 1 relu out, scale 2^-2
typedef ap_fixed<6,4> v2_t; // step 2 max_pool2d out, scale 2^-2
typedef ap_fixed<6,4> v3_t; // step 3 conv2d out, scale 2^-2
typedef ap_fixed<6,4> v4_t; // step 4 relu out, scale 2^-2
typedef ap_fixed<6,4> v5_t; // step 5 mc_dropout out, scale 2^-2
typedef ap_fixed<6,4> v6_t; // step 6 global_avg_pool2d out, scale 2^-2
typedef ap_fixed<6,4> v7_t; // step 7 dense out, scale 2^-2
typedef ap_fixed<6,4> v8_t; // step 8 mc_dropout out, scale 2^-2
typedef ap_fixed<6,4> v9_t; // step 9 dense out, scale 2^-2
typedef ap_fixed<6,4> v10_t; // step 10 relu out, scale 2^-2
typedef ap_fixed<6,5> v11_t; // step 11 dense out, scale 2^-1
typedef ap_fixed<6,5> v12_t; // step 12 relu out, scale 2^-1
typedef ap_fixed<6,4> v13_t; // step 13 dense out, scale 2^-2

typedef v7_t exit0_out_t; // logits of exit 0 (v7)
typedef v13_t exit1_out_t; // logits of exit 1 (v13)

#define NUM_EXITS 2
#define MC_SAMPLES 3
#define N_CLASSES 4
#define INPUT_SIZE 100
#define NUM_SLOTS 5
#define ARENA_ELEMS 250

#endif
