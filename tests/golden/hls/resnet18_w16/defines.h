#ifndef DEFINES_H_
#define DEFINES_H_

#include "ap_fixed.h"
#include "ap_int.h"

// Per-tensor calibrated fixed-point formats (one typedef per value).
typedef ap_fixed<16,3> input_t; // calibrated input, scale 2^-13
typedef ap_fixed<16,4> v0_t; // step 0 conv2d out, scale 2^-12
typedef ap_fixed<16,4> v1_t; // step 1 affine out, scale 2^-12
typedef ap_fixed<16,4> v2_t; // step 2 relu out, scale 2^-12
typedef ap_fixed<16,4> v3_t; // step 3 conv2d out, scale 2^-12
typedef ap_fixed<16,4> v4_t; // step 4 affine out, scale 2^-12
typedef ap_fixed<16,4> v5_t; // step 5 relu out, scale 2^-12
typedef ap_fixed<16,4> v6_t; // step 6 conv2d out, scale 2^-12
typedef ap_fixed<16,4> v7_t; // step 7 affine out, scale 2^-12
typedef ap_fixed<16,4> v8_t; // step 8 merge out, scale 2^-12
typedef ap_fixed<16,5> v9_t; // step 9 conv2d out, scale 2^-11
typedef ap_fixed<16,5> v10_t; // step 10 affine out, scale 2^-11
typedef ap_fixed<16,5> v11_t; // step 11 relu out, scale 2^-11
typedef ap_fixed<16,5> v12_t; // step 12 conv2d out, scale 2^-11
typedef ap_fixed<16,5> v13_t; // step 13 affine out, scale 2^-11
typedef ap_fixed<16,5> v14_t; // step 14 merge out, scale 2^-11
typedef ap_fixed<16,4> v15_t; // step 15 conv2d out, scale 2^-12
typedef ap_fixed<16,4> v16_t; // step 16 affine out, scale 2^-12
typedef ap_fixed<16,4> v17_t; // step 17 relu out, scale 2^-12
typedef ap_fixed<16,4> v18_t; // step 18 conv2d out, scale 2^-12
typedef ap_fixed<16,4> v19_t; // step 19 affine out, scale 2^-12
typedef ap_fixed<16,5> v20_t; // step 20 conv2d out, scale 2^-11
typedef ap_fixed<16,5> v21_t; // step 21 affine out, scale 2^-11
typedef ap_fixed<16,4> v22_t; // step 22 merge out, scale 2^-12
typedef ap_fixed<16,4> v23_t; // step 23 conv2d out, scale 2^-12
typedef ap_fixed<16,4> v24_t; // step 24 affine out, scale 2^-12
typedef ap_fixed<16,4> v25_t; // step 25 relu out, scale 2^-12
typedef ap_fixed<16,4> v26_t; // step 26 conv2d out, scale 2^-12
typedef ap_fixed<16,4> v27_t; // step 27 affine out, scale 2^-12
typedef ap_fixed<16,4> v28_t; // step 28 merge out, scale 2^-12
typedef ap_fixed<16,4> v29_t; // step 29 conv2d out, scale 2^-12
typedef ap_fixed<16,4> v30_t; // step 30 affine out, scale 2^-12
typedef ap_fixed<16,4> v31_t; // step 31 relu out, scale 2^-12
typedef ap_fixed<16,4> v32_t; // step 32 conv2d out, scale 2^-12
typedef ap_fixed<16,4> v33_t; // step 33 affine out, scale 2^-12
typedef ap_fixed<16,4> v34_t; // step 34 conv2d out, scale 2^-12
typedef ap_fixed<16,4> v35_t; // step 35 affine out, scale 2^-12
typedef ap_fixed<16,5> v36_t; // step 36 merge out, scale 2^-11
typedef ap_fixed<16,4> v37_t; // step 37 conv2d out, scale 2^-12
typedef ap_fixed<16,4> v38_t; // step 38 affine out, scale 2^-12
typedef ap_fixed<16,4> v39_t; // step 39 relu out, scale 2^-12
typedef ap_fixed<16,4> v40_t; // step 40 conv2d out, scale 2^-12
typedef ap_fixed<16,4> v41_t; // step 41 affine out, scale 2^-12
typedef ap_fixed<16,5> v42_t; // step 42 merge out, scale 2^-11
typedef ap_fixed<16,5> v43_t; // step 43 conv2d out, scale 2^-11
typedef ap_fixed<16,5> v44_t; // step 44 affine out, scale 2^-11
typedef ap_fixed<16,5> v45_t; // step 45 relu out, scale 2^-11
typedef ap_fixed<16,5> v46_t; // step 46 conv2d out, scale 2^-11
typedef ap_fixed<16,5> v47_t; // step 47 affine out, scale 2^-11
typedef ap_fixed<16,6> v48_t; // step 48 conv2d out, scale 2^-10
typedef ap_fixed<16,6> v49_t; // step 49 affine out, scale 2^-10
typedef ap_fixed<16,5> v50_t; // step 50 merge out, scale 2^-11
typedef ap_fixed<16,5> v51_t; // step 51 conv2d out, scale 2^-11
typedef ap_fixed<16,5> v52_t; // step 52 affine out, scale 2^-11
typedef ap_fixed<16,5> v53_t; // step 53 relu out, scale 2^-11
typedef ap_fixed<16,5> v54_t; // step 54 conv2d out, scale 2^-11
typedef ap_fixed<16,5> v55_t; // step 55 affine out, scale 2^-11
typedef ap_fixed<16,6> v56_t; // step 56 merge out, scale 2^-10
typedef ap_fixed<16,5> v57_t; // step 57 mc_dropout out, scale 2^-11
typedef ap_fixed<16,5> v58_t; // step 58 global_avg_pool2d out, scale 2^-11
typedef ap_fixed<16,2> v59_t; // step 59 dense out, scale 2^-14
typedef ap_fixed<16,4> v60_t; // step 60 mc_dropout out, scale 2^-12
typedef ap_fixed<16,4> v61_t; // step 61 global_avg_pool2d out, scale 2^-12
typedef ap_fixed<16,3> v62_t; // step 62 dense out, scale 2^-13
typedef ap_fixed<16,5> v63_t; // step 63 mc_dropout out, scale 2^-11
typedef ap_fixed<16,5> v64_t; // step 64 global_avg_pool2d out, scale 2^-11
typedef ap_fixed<16,5> v65_t; // step 65 dense out, scale 2^-11
typedef ap_fixed<16,6> v66_t; // step 66 mc_dropout out, scale 2^-10
typedef ap_fixed<16,6> v67_t; // step 67 global_avg_pool2d out, scale 2^-10
typedef ap_fixed<16,5> v68_t; // step 68 dense out, scale 2^-11

typedef v59_t exit0_out_t; // logits of exit 0 (v59)
typedef v62_t exit1_out_t; // logits of exit 1 (v62)
typedef v65_t exit2_out_t; // logits of exit 2 (v65)
typedef v68_t exit3_out_t; // logits of exit 3 (v68)

#define NUM_EXITS 4
#define MC_SAMPLES 3
#define N_CLASSES 10
#define INPUT_SIZE 432
#define NUM_SLOTS 9
#define ARENA_ELEMS 3344

#endif
