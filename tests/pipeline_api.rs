//! Integration tests of the staged pipeline API: `run_to`/`resume_from`
//! round-trips, observer event ordering, and per-stage validation parity with
//! the old monolithic constructor checks.

use bayesnn_fpga::core::framework::{FrameworkConfig, TransformationFramework};
use bayesnn_fpga::core::phase1::ModelVariant;
use bayesnn_fpga::core::pipeline::{
    PhaseId, PipelineEvent, PipelineSession, RecordingObserver, StageArtifact,
};
use bayesnn_fpga::data::{DatasetSpec, SyntheticConfig};
use bayesnn_fpga::models::zoo::Architecture;
use bayesnn_fpga::models::ModelConfig;

fn small_config() -> FrameworkConfig {
    let mut config = FrameworkConfig::quick_demo(Architecture::LeNet5);
    config.phase1.model = ModelConfig::mnist()
        .with_resolution(10, 10)
        .with_width_divisor(8)
        .with_classes(4);
    config.phase1.dataset = SyntheticConfig::new(
        DatasetSpec::mnist_like()
            .with_resolution(10, 10)
            .with_classes(4),
    )
    .with_samples(80, 48);
    config.phase1.train.epochs = 2;
    config.phase1.variants = vec![ModelVariant::SingleExit, ModelVariant::McdMultiExit];
    config.phase1.confidence_thresholds = vec![0.8];
    config.phase3.reuse_factors = vec![16, 64];
    config
}

#[test]
fn run_to_then_resume_equals_full_run() {
    // Full run through the compatibility wrapper (which itself drives a
    // session), the reference outcome.
    let reference = TransformationFramework::new(small_config())
        .unwrap()
        .run()
        .unwrap();

    // Partial run: stop after Phase 2 and export the artifact.
    let mut first = PipelineSession::new(small_config()).unwrap();
    first.run_to(PhaseId::Phase2).unwrap();
    assert!(first.artifacts().phase3.is_none());
    let checkpoint = first.artifacts().phase2.clone().unwrap();

    // Resume in a brand-new session.
    let mut second = PipelineSession::new(small_config()).unwrap();
    second.resume_from(StageArtifact::Phase2(checkpoint));
    let resumed = second.run().unwrap();

    // The resumed pipeline selects exactly the same design.
    assert_eq!(resumed.phase1, reference.phase1);
    assert_eq!(resumed.phase2, reference.phase2);
    assert_eq!(resumed.phase3, reference.phase3);
    assert_eq!(resumed.phase4.report, reference.phase4.report);
    assert_eq!(resumed.phase4.hls_config, reference.phase4.hls_config);
    assert_eq!(resumed.summary(), reference.summary());
}

#[test]
fn resume_from_discards_later_artifacts() {
    let mut session = PipelineSession::new(small_config()).unwrap();
    session.run_to(PhaseId::Phase3).unwrap();
    let artifact1 = session.artifacts().phase1.clone().unwrap();

    session.resume_from(StageArtifact::Phase1(artifact1));
    assert!(session.artifacts().phase1.is_some());
    assert!(session.artifacts().phase2.is_none());
    assert!(session.artifacts().phase3.is_none());
    assert_eq!(session.artifacts().latest_phase(), Some(PhaseId::Phase1));

    // And the pipeline completes from the restored point.
    let outcome = session.run().unwrap();
    assert!(outcome.phase4.report.fits);
}

#[test]
fn observer_events_fire_once_per_phase_in_order() {
    let recorder = RecordingObserver::new();
    let mut session = PipelineSession::new(small_config())
        .unwrap()
        .with_observer(recorder.clone());
    session.run().unwrap();

    let events = recorder.events();
    // Exactly one start and one complete per phase.
    for phase in PhaseId::all() {
        let starts = events
            .iter()
            .filter(|e| matches!(e, PipelineEvent::PhaseStart(p) if *p == phase))
            .count();
        let completes = events
            .iter()
            .filter(|e| matches!(e, PipelineEvent::PhaseComplete(p, _) if *p == phase))
            .count();
        assert_eq!(starts, 1, "{phase} started {starts} times");
        assert_eq!(completes, 1, "{phase} completed {completes} times");
    }

    // Lifecycle events arrive in pipeline order: start1 < complete1 <
    // start2 < complete2 < ...
    let boundaries: Vec<&PipelineEvent> = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                PipelineEvent::PhaseStart(_) | PipelineEvent::PhaseComplete(_, _)
            )
        })
        .collect();
    let expected: Vec<PhaseId> = PhaseId::all().into_iter().flat_map(|p| [p, p]).collect();
    assert_eq!(boundaries.len(), expected.len());
    for (event, phase) in boundaries.iter().zip(expected) {
        match event {
            PipelineEvent::PhaseStart(p) | PipelineEvent::PhaseComplete(p, _) => {
                assert_eq!(*p, phase)
            }
            _ => unreachable!(),
        }
    }

    // Every phase reported candidates, sandwiched between its start/complete.
    for phase in PhaseId::all() {
        let candidates = events
            .iter()
            .filter(|e| matches!(e, PipelineEvent::Candidate(p, _, _) if *p == phase))
            .count();
        assert!(candidates >= 1, "{phase} reported no candidates");
    }
}

#[test]
fn cached_phases_emit_no_events_after_resume() {
    let mut first = PipelineSession::new(small_config()).unwrap();
    first.run_to(PhaseId::Phase2).unwrap();
    let checkpoint = first.artifacts().phase2.clone().unwrap();

    let recorder = RecordingObserver::new();
    let mut second = PipelineSession::new(small_config())
        .unwrap()
        .with_observer(recorder.clone());
    second.resume_from(StageArtifact::Phase2(checkpoint));
    second.run().unwrap();

    let events = recorder.events();
    assert!(!events.iter().any(|e| matches!(
        e,
        PipelineEvent::PhaseStart(PhaseId::Phase1 | PhaseId::Phase2)
    )));
    assert!(events
        .iter()
        .any(|e| matches!(e, PipelineEvent::PhaseStart(PhaseId::Phase3))));
    assert!(events
        .iter()
        .any(|e| matches!(e, PipelineEvent::PhaseStart(PhaseId::Phase4))));
}

#[test]
fn per_stage_validation_matches_old_constructor_checks() {
    // The exact configurations the old TransformationFramework::new rejected
    // must still be rejected — by the wrapper, the session and the builder.
    let mut config = small_config();
    config.clock_mhz = 0.0;
    assert!(TransformationFramework::new(config.clone()).is_err());
    assert!(PipelineSession::new(config.clone()).is_err());
    assert!(config.builder().build().is_err());

    let mut config = small_config();
    config.phase1.variants.clear();
    assert!(TransformationFramework::new(config.clone()).is_err());
    assert!(PipelineSession::new(config.clone()).is_err());
    assert!(config.builder().build().is_err());

    let mut config = small_config();
    config.phase3.formats.clear();
    assert!(TransformationFramework::new(config.clone()).is_err());
    assert!(PipelineSession::new(config.clone()).is_err());
    assert!(config.builder().build().is_err());

    let mut config = small_config();
    config.phase3.reuse_factors.clear();
    assert!(TransformationFramework::new(config.clone()).is_err());
    assert!(PipelineSession::new(config).is_err());

    // A valid configuration passes everywhere.
    assert!(TransformationFramework::new(small_config()).is_ok());
    assert!(PipelineSession::new(small_config()).is_ok());
    assert!(small_config().builder().build().is_ok());
}
