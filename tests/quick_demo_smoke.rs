//! Smoke test: the stock `FrameworkConfig::quick_demo` configuration — the
//! one the README and the facade doctest advertise — must run all four phases
//! end-to-end quickly and populate every phase output.
//!
//! `tests/framework_end_to_end.rs` covers a hand-shrunk configuration in
//! depth; this test guards the out-of-the-box demo path and its runtime
//! budget.

use std::time::{Duration, Instant};

use bayesnn_fpga::core::framework::{FrameworkConfig, TransformationFramework};
use bayesnn_fpga::models::zoo::Architecture;

#[test]
fn quick_demo_runs_all_four_phases_quickly() {
    let config = FrameworkConfig::quick_demo(Architecture::LeNet5);
    let started = Instant::now();
    let outcome = TransformationFramework::new(config).unwrap().run().unwrap();
    let elapsed = started.elapsed();

    // Phase 1: algorithmic exploration produced candidates with sane metrics
    // and selected one.
    assert!(!outcome.phase1.candidates.is_empty());
    for candidate in &outcome.phase1.candidates {
        assert!((0.0..=1.0).contains(&candidate.metrics.evaluation.accuracy));
        assert!((0.0..=1.0).contains(&candidate.metrics.evaluation.ece));
    }
    let best1 = outcome.phase1.best();
    assert!((0.0..=1.0).contains(&best1.metrics.evaluation.accuracy));

    // Phase 2: mapping exploration found a feasible MC-engine mapping.
    assert!(!outcome.phase2.candidates.is_empty());
    assert!(outcome.phase2.best().feasible);

    // Phase 3: bitwidth/reuse co-exploration found a feasible design point.
    assert!(!outcome.phase3.points.is_empty());
    assert!(outcome.phase3.best().feasible);

    // Phase 4: the HLS project and implementation report are populated.
    let report = &outcome.phase4.report;
    assert!(report.latency_ms > 0.0);
    assert!(report.energy_per_image_j > 0.0);
    assert!(!outcome.phase4.project.paths().is_empty());

    // The demo must stay demo-sized.
    assert!(
        elapsed < Duration::from_secs(30),
        "quick_demo took {elapsed:?}, budget is 30s"
    );
}
