//! Parity suite of the compiled execution plans: on a trained multi-exit
//! LeNet-5, the planned integer path must be **bit-exact** with the
//! unplanned path for every format in the paper's search space
//! `{4, 6, 8, 16}`, in both deterministic ([`Mode::Eval`]) and Monte-Carlo
//! ([`Mode::McSample`]) execution, and through the full seeded
//! `predict_probs` loop. The float side gets the same treatment: the
//! sampler's planned prediction path must reproduce the layer-chain path
//! bit for bit.

use bayesnn_fpga::bayes::sampling::{McSampler, SamplingConfig};
use bayesnn_fpga::models::{zoo, ModelConfig};
use bayesnn_fpga::nn::layer::Mode;
use bayesnn_fpga::nn::optimizer::Sgd;
use bayesnn_fpga::nn::trainer::{train, LabelledBatchSource, TrainConfig};
use bayesnn_fpga::quant::{CalibratedNetwork, FixedPointFormat};
use bayesnn_fpga::tensor::Tensor;
use bnn_data::{DatasetSpec, SyntheticConfig};
use bnn_models::MultiExitNetwork;

/// A trained multi-exit LeNet-5 with calibration and evaluation batches.
fn trained_lenet5() -> (MultiExitNetwork, Tensor, Tensor) {
    let model_cfg = ModelConfig::mnist()
        .with_resolution(10, 10)
        .with_width_divisor(8)
        .with_classes(4);
    let spec = zoo::lenet5(&model_cfg)
        .with_exits_after_every_block()
        .unwrap()
        .with_exit_mcd(0.25)
        .unwrap();
    let data = SyntheticConfig::new(
        DatasetSpec::mnist_like()
            .with_resolution(10, 10)
            .with_classes(4),
    )
    .with_samples(64, 24)
    .generate(17)
    .unwrap();
    let mut network = spec.build(4).unwrap();
    let batches =
        LabelledBatchSource::new(data.train.inputs().clone(), data.train.labels().to_vec())
            .unwrap();
    let mut sgd = Sgd::new(0.05).with_momentum(0.9);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        ..TrainConfig::default()
    };
    train(&mut network, &batches, &mut sgd, &cfg).unwrap();
    let calib = data.train.take(24).unwrap().inputs().clone();
    let eval = data.test.inputs().clone();
    (network, calib, eval)
}

/// The acceptance-criteria sweep: planned and unplanned integer inference
/// agree bit for bit across every searched format and both execution modes.
#[test]
fn planned_integer_path_is_bit_exact_with_unplanned_across_formats_and_modes() {
    let (network, calib, eval) = trained_lenet5();
    let calibrated = CalibratedNetwork::calibrate(&network, &calib).unwrap();
    for format in FixedPointFormat::search_space() {
        let mut unplanned = calibrated.quantize(format).unwrap();
        let mut plan = calibrated.plan(format).unwrap();

        // Deterministic evaluation.
        let a = unplanned.forward_exits_int(&eval, Mode::Eval).unwrap();
        let b = plan.forward_exits_int(&eval, Mode::Eval).unwrap();
        assert_eq!(a.len(), b.len());
        for (exit, (ta, tb)) in a.iter().zip(&b).enumerate() {
            assert_eq!(ta.as_slice(), tb.as_slice(), "{format} Eval exit {exit}");
        }

        // Monte-Carlo sampling under shared reseeds.
        for seed in [5u64, 2023] {
            unplanned.reseed_mc_streams(seed);
            plan.reseed_mc_streams(seed);
            let a = unplanned.forward_exits_int(&eval, Mode::McSample).unwrap();
            let b = plan.forward_exits_int(&eval, Mode::McSample).unwrap();
            for (exit, (ta, tb)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    ta.as_slice(),
                    tb.as_slice(),
                    "{format} McSample seed {seed} exit {exit}"
                );
            }
        }

        // The full seeded MC prediction loop, including pass bookkeeping
        // and sample truncation.
        for n_samples in [1usize, 4, 6] {
            let a = unplanned.predict_probs(&eval, n_samples, 2023).unwrap();
            let b = plan.predict_probs(&eval, n_samples, 2023).unwrap();
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "{format} predict_probs n_samples={n_samples}"
            );
        }
    }
}

/// The calibration record is derived once and shared: quantizing through
/// [`CalibratedNetwork`] equals the one-shot `lower` entry point.
#[test]
fn shared_calibration_record_matches_one_shot_lowering() {
    use bayesnn_fpga::quant::QuantizedMultiExitNetwork;
    let (network, calib, eval) = trained_lenet5();
    let calibrated = CalibratedNetwork::calibrate(&network, &calib).unwrap();
    for format in FixedPointFormat::search_space() {
        let mut from_record = calibrated.quantize(format).unwrap();
        let mut one_shot = QuantizedMultiExitNetwork::lower(&network, format, &calib).unwrap();
        let a = from_record.forward_exits_int(&eval, Mode::Eval).unwrap();
        let b = one_shot.forward_exits_int(&eval, Mode::Eval).unwrap();
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.as_slice(), tb.as_slice(), "{format}");
        }
    }
}

/// The float sampler's planned path (compiled `MultiExitPlan`, arenas reused
/// across MC passes) reproduces the prediction of a spec-rebuilt replica of
/// the same network — the strongest float-side equivalence available through
/// the public API: replicas share nothing with the original but the
/// checkpoint, so agreement pins the planned path to the checkpointed
/// arithmetic bit for bit.
#[test]
fn sampler_planned_path_matches_replica_prediction_bitwise() {
    use bayesnn_fpga::tensor::exec::Executor;
    let (mut network, _calib, eval) = trained_lenet5();
    // A replica rebuilt from spec + checkpoint (the pre-plan worker path).
    let mut replica = network.replicate().unwrap();
    // Both samplers compile (and cache) plans for this plannable network;
    // the executors differ, so this also pins the parallel fan-out (plan
    // clones as worker replicas) to the sequential single-plan loop.
    let planned = McSampler::new(SamplingConfig::new(8)).with_executor(Executor::new(4));
    let layered = McSampler::new(SamplingConfig::new(8)).with_executor(Executor::sequential());
    let a = planned.predict(&mut network, &eval).unwrap();
    let b = layered.predict(&mut replica, &eval).unwrap();
    assert_eq!(a.mean_probs.as_slice(), b.mean_probs.as_slice());
    assert_eq!(a.per_sample.len(), b.per_sample.len());
    for (sa, sb) in a.per_sample.iter().zip(&b.per_sample) {
        assert_eq!(sa.as_slice(), sb.as_slice());
    }
}
