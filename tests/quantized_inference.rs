//! Integration tests of the true fixed-point integer inference path:
//! the deterministic integer-vs-fake-quant parity sweep over the paper's
//! bitwidth search space on LeNet-5, end-to-end saturation behaviour and
//! the Phase 3 execution-model plumbing.

use bayesnn_fpga::models::{zoo, ModelConfig};
use bayesnn_fpga::nn::layer::Mode;
use bayesnn_fpga::nn::optimizer::Sgd;
use bayesnn_fpga::nn::trainer::{train, LabelledBatchSource, TrainConfig};
use bayesnn_fpga::quant::{FixedPointFormat, QuantizedMultiExitNetwork};
use bayesnn_fpga::tensor::Tensor;
use bnn_data::{DatasetSpec, SyntheticConfig};
use bnn_models::MultiExitNetwork;

/// A trained multi-exit LeNet-5 with calibration and evaluation batches.
fn trained_lenet5() -> (MultiExitNetwork, Tensor, Tensor) {
    let model_cfg = ModelConfig::mnist()
        .with_resolution(10, 10)
        .with_width_divisor(8)
        .with_classes(4);
    let spec = zoo::lenet5(&model_cfg)
        .with_exits_after_every_block()
        .unwrap()
        .with_exit_mcd(0.25)
        .unwrap();
    let data = SyntheticConfig::new(
        DatasetSpec::mnist_like()
            .with_resolution(10, 10)
            .with_classes(4),
    )
    .with_samples(64, 32)
    .generate(11)
    .unwrap();
    let mut network = spec.build(2).unwrap();
    let batches =
        LabelledBatchSource::new(data.train.inputs().clone(), data.train.labels().to_vec())
            .unwrap();
    let mut sgd = Sgd::new(0.05).with_momentum(0.9);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        ..TrainConfig::default()
    };
    train(&mut network, &batches, &mut sgd, &cfg).unwrap();
    let calib = data.train.take(24).unwrap().inputs().clone();
    let eval = data.test.inputs().clone();
    (network, calib, eval)
}

/// The deterministic parity sweep of the PR's acceptance criteria: for every
/// format in the paper's search space `{4, 6, 8, 16}`, the integer path and
/// the fake-quantized float evaluation of the same calibrated graph must
/// agree within one quantization step of each exit's output format, on both
/// the deterministic and the Monte-Carlo sampled path.
#[test]
fn integer_path_matches_fake_quant_float_within_one_step_across_formats() {
    let (network, calib, eval) = trained_lenet5();
    for format in FixedPointFormat::search_space() {
        let mut qnet = QuantizedMultiExitNetwork::lower(&network, format, &calib).unwrap();
        let steps: Vec<f32> = qnet.exit_out_params().iter().map(|p| p.scale()).collect();

        // Deterministic (Eval) parity per exit.
        let int_logits = qnet.forward_exits_int(&eval, Mode::Eval).unwrap();
        let sim_logits = qnet.forward_exits_float_sim(&eval, Mode::Eval).unwrap();
        assert_eq!(int_logits.len(), sim_logits.len());
        for (exit, (a, b)) in int_logits.iter().zip(&sim_logits).enumerate() {
            let max_diff = a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(
                max_diff <= steps[exit] + 1e-6,
                "{format} exit {exit}: max |int - float| = {max_diff}, one step = {}",
                steps[exit]
            );
        }

        // MC-sampled parity: a shared reseed draws identical masks in both
        // domains, so the bound holds pass-for-pass too.
        qnet.reseed_mc_streams(99);
        let int_mc = qnet.forward_exits_int(&eval, Mode::McSample).unwrap();
        qnet.reseed_mc_streams(99);
        let sim_mc = qnet.forward_exits_float_sim(&eval, Mode::McSample).unwrap();
        for (exit, (a, b)) in int_mc.iter().zip(&sim_mc).enumerate() {
            let max_diff = a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(
                max_diff <= steps[exit] + 1e-6,
                "{format} exit {exit} (MC): max |int - float| = {max_diff}, one step = {}",
                steps[exit]
            );
        }
    }
}

/// 8-bit formats keep all integer-path arithmetic inside the range where
/// f32 is exact, so there the two paths are not merely close — they are
/// bitwise identical end to end.
#[test]
fn eight_bit_parity_is_exact() {
    let (network, calib, eval) = trained_lenet5();
    for format in [
        FixedPointFormat::new(4, 2).unwrap(),
        FixedPointFormat::new(6, 2).unwrap(),
        FixedPointFormat::new(8, 3).unwrap(),
    ] {
        let mut qnet = QuantizedMultiExitNetwork::lower(&network, format, &calib).unwrap();
        let int_logits = qnet.forward_exits_int(&eval, Mode::Eval).unwrap();
        let sim_logits = qnet.forward_exits_float_sim(&eval, Mode::Eval).unwrap();
        for (a, b) in int_logits.iter().zip(&sim_logits) {
            assert_eq!(a.as_slice(), b.as_slice(), "format {format}");
        }
    }
}

/// Integer MC prediction is seed-reproducible and produces probability
/// simplex rows; wider formats track the float model's prediction closely.
#[test]
fn integer_mc_prediction_is_reproducible_and_calibrated() {
    let (network, calib, eval) = trained_lenet5();
    let format = FixedPointFormat::new(8, 3).unwrap();
    let mut qnet = QuantizedMultiExitNetwork::lower(&network, format, &calib).unwrap();
    let probs = qnet.predict_probs(&eval, 6, 2023).unwrap();
    let again = qnet.predict_probs(&eval, 6, 2023).unwrap();
    assert_eq!(probs.as_slice(), again.as_slice());
    let batch = eval.dims()[0];
    for b in 0..batch {
        let row = &probs.as_slice()[b * 4..(b + 1) * 4];
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "row {b} sums to {sum}");
        assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}

/// Max-magnitude inputs must saturate (pin at the format extremes) instead
/// of wrapping, all the way through a real convolutional network.
#[test]
fn extreme_inputs_saturate_through_the_whole_network() {
    let (network, calib, _eval) = trained_lenet5();
    let format = FixedPointFormat::new(4, 2).unwrap();
    let mut qnet = QuantizedMultiExitNetwork::lower(&network, format, &calib).unwrap();
    let hot = Tensor::full(&[2, 1, 10, 10], 1e9);
    let logits = qnet.forward_exits_int(&hot, Mode::Eval).unwrap();
    for exit in &logits {
        for &v in exit.as_slice() {
            assert!(v.is_finite(), "saturation must never produce inf/NaN");
        }
    }
    // And the parity bound still holds at the extremes.
    let sim = qnet.forward_exits_float_sim(&hot, Mode::Eval).unwrap();
    let steps: Vec<f32> = qnet.exit_out_params().iter().map(|p| p.scale()).collect();
    for (exit, (a, b)) in logits.iter().zip(&sim).enumerate() {
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= steps[exit] + 1e-6);
        }
    }
}
