//! Golden-file snapshot tests for the lowered per-tensor HLS generator.
//!
//! Every zoo model × searched format pins its emitted `firmware/defines.h`
//! (the per-tensor `ap_fixed` typedefs) and top-level `.cpp` (the layer
//! pipeline walked from the compiled plan's step schedule) against checked-in
//! golden files under `tests/golden/hls/`. Any codegen change — intended or
//! not — shows up as a readable text diff in review instead of a silent
//! drift.
//!
//! To regenerate the goldens after an intentional generator change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test hls_golden_files
//! ```
//!
//! then review the diff of `tests/golden/hls/` before committing. The
//! emitted text is deterministic: untrained seeded weights, a seeded
//! calibration batch, and integer-only scale comments — so the snapshots are
//! stable across thread counts and SIMD backends.

use bayesnn_fpga::hls::{HlsConfig, LoweredDesign};
use bayesnn_fpga::models::{zoo, ModelConfig, NetworkSpec};
use bayesnn_fpga::quant::{CalibratedNetwork, FixedPointFormat};
use bayesnn_fpga::tensor::rng::Xoshiro256StarStar;
use bayesnn_fpga::tensor::Tensor;
use std::path::PathBuf;

/// One snapshot subject: a calibrated zoo model under a project name.
struct Subject {
    name: &'static str,
    spec: NetworkSpec,
    calibrated: CalibratedNetwork,
}

fn lenet_subject() -> Subject {
    let spec = zoo::lenet5(
        &ModelConfig::mnist()
            .with_resolution(10, 10)
            .with_width_divisor(8)
            .with_classes(4),
    )
    .with_exits_after_every_block()
    .unwrap()
    .with_exit_mcd(0.25)
    .unwrap();
    let net = spec.build(3).unwrap();
    let mut rng = Xoshiro256StarStar::seed_from_u64(4);
    let calib = Tensor::randn(&[6, 1, 10, 10], &mut rng);
    let calibrated = CalibratedNetwork::calibrate(&net, &calib).unwrap();
    Subject {
        name: "lenet5",
        spec,
        calibrated,
    }
}

fn resnet_subject() -> Subject {
    let spec = zoo::resnet18(
        &ModelConfig::cifar10()
            .with_resolution(12, 12)
            .with_width_divisor(16),
    )
    .with_exits_after_every_block()
    .unwrap()
    .with_exit_mcd(0.3)
    .unwrap();
    let net = spec.build(11).unwrap();
    let mut rng = Xoshiro256StarStar::seed_from_u64(5);
    let calib = Tensor::randn(&[4, 3, 12, 12], &mut rng);
    let calibrated = CalibratedNetwork::calibrate(&net, &calib).unwrap();
    Subject {
        name: "resnet18",
        spec,
        calibrated,
    }
}

fn golden_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("hls")
}

/// Compares `actual` against the checked-in golden file, or rewrites the
/// golden when `UPDATE_GOLDEN=1` is set.
fn check_golden(case: &str, file: &str, actual: &str) {
    let path = golden_root().join(case).join(file);
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test hls_golden_files`",
            path.display()
        )
    });
    if expected != actual {
        // Point at the first differing line so the failure is readable
        // without a manual diff.
        let mismatch = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map(|i| format!("first differing line {}", i + 1))
            .unwrap_or_else(|| "files differ in length".into());
        panic!(
            "{case}/{file} drifted from its golden ({mismatch}); if the codegen \
             change is intentional, run `UPDATE_GOLDEN=1 cargo test --test \
             hls_golden_files` and review the diff"
        );
    }
}

fn snapshot_subject(subject: &Subject) {
    for format in FixedPointFormat::search_space() {
        let config = HlsConfig::new(subject.name).with_format(format);
        let design = LoweredDesign::generate(&subject.calibrated, &config).unwrap();
        let case = format!("{}_w{}", subject.name, format.total_bits());
        let defines = design
            .project()
            .file("firmware/defines.h")
            .expect("lowered project has defines.h");
        check_golden(&case, "defines.h", defines);
        let top = design
            .project()
            .file(&format!("firmware/{}.cpp", subject.name))
            .expect("lowered project has a top-level cpp");
        check_golden(&case, "top.cpp", top);
        // The snapshot covers the text; the summary guards the quantities a
        // reviewer cannot eyeball from the diff.
        assert_eq!(
            design.summary().macs,
            bayesnn_fpga::hw::network_macs(&subject.spec).unwrap(),
            "{case}: emitted MACs must match the hw model"
        );
    }
}

#[test]
fn lenet5_snapshots_are_stable_across_formats() {
    snapshot_subject(&lenet_subject());
}

#[test]
fn resnet18_snapshots_are_stable_across_formats() {
    snapshot_subject(&resnet_subject());
}

#[test]
fn snapshots_cover_per_tensor_types_not_one_global_width() {
    // The lowered generator's defining property vs the spec-driven one: more
    // than one distinct ap_fixed typedef in defines.h (per-tensor integer
    // widths follow the calibrated ranges).
    let subject = lenet_subject();
    let config = HlsConfig::new(subject.name).with_format(FixedPointFormat::new(8, 3).unwrap());
    let design = LoweredDesign::generate(&subject.calibrated, &config).unwrap();
    let defines = design.project().file("firmware/defines.h").unwrap();
    let distinct: std::collections::BTreeSet<&str> = defines
        .lines()
        .filter(|l| l.contains("ap_fixed<"))
        .filter_map(|l| l.split_whitespace().find(|t| t.starts_with("ap_fixed<")))
        .collect();
    assert!(
        distinct.len() > 1,
        "expected per-tensor ap_fixed types, found only {distinct:?}"
    );
}
