//! Determinism contract of the parallel-execution layer: the pipeline's
//! artifacts (trained checkpoints, candidate metrics, selected design
//! points) are bitwise identical for every thread count.
//!
//! The `BNN_THREADS` variant of this contract lives in its own binary
//! (`parallel_determinism_env.rs`), because mutating the environment is not
//! safe next to concurrently running test threads.

mod common;

#[test]
fn pipeline_is_bitwise_identical_across_thread_counts() {
    let (sequential, seq_events) = common::run_pipeline(common::small_config().with_threads(1));
    let (parallel, par_events) = common::run_pipeline(common::small_config().with_threads(4));
    common::assert_artifacts_identical(&sequential, &parallel);
    // Observer events are buffered and delivered in candidate-index order at
    // the phase boundary, so the event *sequence* is also identical.
    assert_eq!(seq_events.events(), par_events.events());
}
