//! Determinism suite of the serving layer and its batch-capable plans.
//!
//! Three properties are pinned, all bitwise:
//!
//! 1. **Batch-boundary invariance** — `predict_probs_batch*` on a batch of
//!    N samples equals the concatenation of N single-sample calls, for every
//!    fixed-point format in the paper's search space `{4, 6, 8, 16}` and
//!    across executors, and likewise for the float [`MultiExitPlan`]. This
//!    is the property that makes dynamic batching transparent.
//! 2. **Plan-cache invalidation under concurrency** — worker threads running
//!    [`McSampler::predict`] while another thread mutates weights through
//!    `params_mut` only ever observe the pre- or post-mutation prediction,
//!    never a stale cached plan.
//! 3. **Server invariance** — the same request stream produces identical
//!    per-request outputs regardless of batching config and worker count.

use bayesnn_fpga::models::{zoo, ModelConfig};
use bayesnn_fpga::quant::{CalibratedNetwork, FixedPointFormat};
use bayesnn_fpga::serve::replay::{replay, ReplayConfig};
use bayesnn_fpga::serve::{ExitPolicy, InferenceServer, QuantEngine, ServerConfig};
use bayesnn_fpga::tensor::exec::Executor;
use bayesnn_fpga::tensor::rng::Xoshiro256StarStar;
use bayesnn_fpga::tensor::Tensor;
use bnn_models::MultiExitNetwork;
use std::time::Duration;

const MC_SAMPLES: usize = 6;
const MC_SEED: u64 = 2023;

/// The small multi-exit LeNet-5 of the plan test suites (10x10, width/8,
/// 4 classes; 100 input elements per sample).
fn small_lenet() -> MultiExitNetwork {
    zoo::lenet5(
        &ModelConfig::mnist()
            .with_resolution(10, 10)
            .with_width_divisor(8)
            .with_classes(4),
    )
    .with_exits_after_every_block()
    .unwrap()
    .with_exit_mcd(0.25)
    .unwrap()
    .build(3)
    .unwrap()
}

/// A batch of well-formed inputs plus the same data as single-sample chunks.
fn batch_and_singles(batch: usize) -> (Tensor, Vec<Tensor>) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(11);
    let inputs = Tensor::randn(&[batch, 1, 10, 10], &mut rng);
    let singles = inputs
        .as_slice()
        .chunks_exact(100)
        .map(|c| Tensor::from_vec(c.to_vec(), &[1, 1, 10, 10]).unwrap())
        .collect();
    (inputs, singles)
}

/// Acceptance-criteria sweep: batched integer prediction is bit-exact with
/// per-sample calls for every searched format, on both the sequential and a
/// multi-threaded executor.
#[test]
fn quant_batched_predict_matches_singles_across_formats_and_executors() {
    let network = small_lenet();
    let mut rng = Xoshiro256StarStar::seed_from_u64(5);
    let calib = Tensor::randn(&[8, 1, 10, 10], &mut rng);
    let calibrated = CalibratedNetwork::calibrate(&network, &calib).unwrap();
    let (inputs, singles) = batch_and_singles(5);

    for format in FixedPointFormat::search_space() {
        let mut reference: Option<Vec<f32>> = None;
        for (name, exec) in [
            ("sequential", Executor::sequential()),
            ("threads(4)", Executor::new(4)),
        ] {
            let mut plan = calibrated.plan(format).unwrap();
            plan.set_executor(exec);
            let batched = plan
                .predict_probs_batch(&inputs, MC_SAMPLES, MC_SEED)
                .unwrap();
            let mut concat = Vec::new();
            for single in &singles {
                let one = plan
                    .predict_probs_batch(single, MC_SAMPLES, MC_SEED)
                    .unwrap();
                concat.extend_from_slice(one.as_slice());
            }
            assert_eq!(
                batched.as_slice(),
                &concat[..],
                "{format} on {name}: batched != concat of single-sample calls"
            );
            // Single-sample batched calls agree with the per-batch-mask
            // entry point (masks coincide at batch 1).
            let plain = plan
                .predict_probs(&singles[0], MC_SAMPLES, MC_SEED)
                .unwrap();
            assert_eq!(
                plain.as_slice(),
                &concat[..plain.len()],
                "{format} on {name}"
            );
            // And the whole thing is executor-invariant.
            match &reference {
                None => reference = Some(batched.as_slice().to_vec()),
                Some(r) => assert_eq!(
                    &r[..],
                    batched.as_slice(),
                    "{format}: results differ across executors"
                ),
            }
        }
    }
}

/// Float-side batch-boundary invariance of the compiled [`MultiExitPlan`].
#[test]
fn float_batched_predict_matches_singles() {
    let network = small_lenet();
    let (inputs, singles) = batch_and_singles(4);
    let mut plan = network.compile_plan(&[1, 10, 10]).unwrap();
    let batched = plan
        .predict_probs_batch(&inputs, MC_SAMPLES, MC_SEED)
        .unwrap();
    let mut concat = Vec::new();
    for single in &singles {
        let one = plan
            .predict_probs_batch(single, MC_SAMPLES, MC_SEED)
            .unwrap();
        concat.extend_from_slice(one.as_slice());
    }
    assert_eq!(
        batched.as_slice(),
        &concat[..],
        "float batched != concat of single-sample calls"
    );
}

/// Plan-cache invalidation race: reader threads predicting through the
/// network's cached plan while a writer mutates weights via `params_mut`
/// must only ever observe the v0 (pre-mutation) or v1 (post-mutation)
/// prediction — a stale cached plan would produce a third value.
#[test]
fn cached_plan_invalidation_is_safe_under_concurrent_prediction() {
    use bayesnn_fpga::bayes::sampling::{McSampler, SamplingConfig};
    use bnn_nn::network::Network as _;
    use std::sync::{Arc, Mutex};

    let mutate = |net: &mut MultiExitNetwork| {
        let mut params = net.params_mut();
        params[0].value.as_mut_slice()[0] += 0.5;
    };
    let mut rng = Xoshiro256StarStar::seed_from_u64(23);
    let x = Tensor::randn(&[2, 1, 10, 10], &mut rng);
    let sampler = McSampler::new(SamplingConfig::new(4)).with_executor(Executor::new(2));

    // Reference predictions from fresh networks at both weight versions.
    let v0 = sampler.predict(&mut small_lenet(), &x).unwrap();
    let v1 = {
        let mut net = small_lenet();
        mutate(&mut net);
        sampler.predict(&mut net, &x).unwrap()
    };
    assert_ne!(v0.mean_probs.as_slice(), v1.mean_probs.as_slice());

    let shared = Arc::new(Mutex::new(small_lenet()));
    let observed: Vec<Vec<f32>> = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let sampler = &sampler;
                let x = &x;
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for _ in 0..8 {
                        let mut net = shared.lock().unwrap();
                        let pred = sampler.predict(&mut net, x).unwrap();
                        seen.push(pred.mean_probs.as_slice().to_vec());
                    }
                    seen
                })
            })
            .collect();
        // Let some reads land on v0, then mutate mid-flight.
        std::thread::sleep(Duration::from_millis(5));
        mutate(&mut shared.lock().unwrap());
        readers
            .into_iter()
            .flat_map(|r| r.join().unwrap())
            .collect()
    });
    for (i, probs) in observed.iter().enumerate() {
        assert!(
            probs[..] == *v0.mean_probs.as_slice() || probs[..] == *v1.mean_probs.as_slice(),
            "observation {i} matches neither the v0 nor the v1 prediction: stale plan"
        );
    }
    // After the race, the cache serves the mutated weights.
    let after = sampler.predict(&mut shared.lock().unwrap(), &x).unwrap();
    assert_eq!(after.mean_probs.as_slice(), v1.mean_probs.as_slice());
}

/// Serving determinism: one request stream, identical per-request outputs
/// under every batching config and worker count (and bit-exact with direct
/// single-sample plan calls).
#[test]
fn server_outputs_are_invariant_to_batching_and_workers() {
    let network = small_lenet();
    let mut rng = Xoshiro256StarStar::seed_from_u64(5);
    let calib = Tensor::randn(&[8, 1, 10, 10], &mut rng);
    let calibrated = CalibratedNetwork::calibrate(&network, &calib).unwrap();
    let mut plan = calibrated
        .plan(FixedPointFormat::new(8, 3).unwrap())
        .unwrap();
    plan.set_executor(Executor::sequential());

    let pool: Vec<Vec<f32>> = {
        let mut rng = Xoshiro256StarStar::seed_from_u64(41);
        let data = Tensor::randn(&[6, 1, 10, 10], &mut rng);
        data.as_slice()
            .chunks_exact(100)
            .map(<[f32]>::to_vec)
            .collect()
    };
    // Direct per-sample references through the plan itself.
    let reference: Vec<Vec<f32>> = pool
        .iter()
        .map(|s| {
            let t = Tensor::from_vec(s.clone(), &[1, 1, 10, 10]).unwrap();
            plan.predict_probs_batch(&t, MC_SAMPLES, MC_SEED)
                .unwrap()
                .as_slice()
                .to_vec()
        })
        .collect();

    let configs = [
        (1usize, 1usize, Duration::ZERO),
        (2, 4, Duration::from_micros(500)),
        (3, 8, Duration::from_millis(2)),
    ];
    for (workers, max_batch, max_delay) in configs {
        let server = InferenceServer::start(
            Box::new(QuantEngine::new(plan.clone())),
            ServerConfig {
                workers,
                max_batch,
                max_delay,
                mc_samples: MC_SAMPLES,
                seed: MC_SEED,
                policy: ExitPolicy::Never,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let outcome = replay(
            &server,
            &pool,
            &ReplayConfig {
                requests: 48,
                rate_per_sec: 50_000.0,
                seed: 9,
            },
        )
        .unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.completed, 48, "every request must be served");
        for (i, output) in outcome.outputs.iter().enumerate() {
            assert_eq!(
                &output.probs[..],
                &reference[i % pool.len()][..],
                "workers={workers} max_batch={max_batch}: request {i} output \
                 depends on batch boundaries"
            );
        }
    }
}
