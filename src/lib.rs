//! # bayesnn-fpga
//!
//! Facade crate for the Rust reproduction of the DAC'23 paper *"When
//! Monte-Carlo Dropout Meets Multi-Exit: Optimizing Bayesian Neural Networks
//! on FPGA"*. It re-exports every workspace crate under a single dependency so
//! examples and downstream users can write `use bayesnn_fpga::core::...`.
//!
//! See `README.md` for the architecture overview, the crate inventory and the
//! paper-table runbook, and `CHANGES.md` for the per-PR history and recorded
//! performance baselines.
//!
//! # Example
//!
//! ```
//! use bayesnn_fpga::tensor::Tensor;
//!
//! let t = Tensor::ones(&[1, 3, 8, 8]);
//! assert_eq!(t.dims(), &[1, 3, 8, 8]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Tensor and PRNG substrate ([`bnn_tensor`]).
pub use bnn_tensor as tensor;

/// Neural-network layers, training and FLOP accounting ([`bnn_nn`]).
pub use bnn_nn as nn;

/// Synthetic vision datasets ([`bnn_data`]).
pub use bnn_data as data;

/// CNN model zoo with multi-exit attachment ([`bnn_models`]).
pub use bnn_models as models;

/// Monte-Carlo Dropout sampling, ensembling and calibration metrics ([`bnn_bayes`]).
pub use bnn_bayes as bayes;

/// Fixed-point quantization ([`bnn_quant`]).
pub use bnn_quant as quant;

/// Batched inference serving on compiled plans ([`bnn_serve`]).
pub use bnn_serve as serve;

/// Analytic FPGA hardware model ([`bnn_hw`]).
pub use bnn_hw as hw;

/// HLS C++ code generation ([`bnn_hls`]).
pub use bnn_hls as hls;

/// The transformation framework — the paper's primary contribution ([`bnn_core`]).
pub use bnn_core as core;
