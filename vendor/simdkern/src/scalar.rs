//! Portable scalar implementations of every kernel — the fallback of the
//! dispatch layer and the in-crate bit-exactness reference.
//!
//! These intentionally mirror the reference loops in `bnn_tensor::int`
//! (which remain the workspace-level ground truth): the matmuls are plain
//! ascending-index dot products — integer accumulation is exact, so the
//! blocked/vectorized orders elsewhere produce the same bits — and the
//! requantize loop is the two-branch round-shift + clamp.

use crate::ConvShape;

pub(crate) fn matmul_wide_i32(a: &[i16], bt: &[i16], k: usize, n: usize, out: &mut [i32]) {
    for (i, out_row) in out.chunks_exact_mut(n).enumerate() {
        let a_row = &a[i * k..(i + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            let bt_row = &bt[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&av, &bv) in a_row.iter().zip(bt_row) {
                acc += av as i32 * bv as i32;
            }
            *o = acc;
        }
    }
}

pub(crate) fn matmul_abt_i64(a: &[i16], bt: &[i16], k: usize, n: usize, out: &mut [i64]) {
    for (i, out_row) in out.chunks_exact_mut(n).enumerate() {
        let a_row = &a[i * k..(i + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            let bt_row = &bt[j * k..(j + 1) * k];
            let mut acc = 0i64;
            for (&av, &bv) in a_row.iter().zip(bt_row) {
                acc += av as i64 * bv as i64;
            }
            *o = acc;
        }
    }
}

/// Round-to-nearest (ties away from zero) shift + clamp of one value — the
/// same arithmetic as `bnn_tensor::int::requantize` for non-negative shifts.
pub(crate) fn requantize_one(value: i64, shift: u32, qmin: i64, qmax: i64) -> i16 {
    let scaled = if shift == 0 {
        value
    } else {
        let bias = 1i64 << (shift - 1);
        if value >= 0 {
            (value + bias) >> shift
        } else {
            -((-value + bias) >> shift)
        }
    };
    scaled.clamp(qmin, qmax) as i16
}

pub(crate) fn requantize_i32_row(
    acc: &[i32],
    bias: i64,
    shift: u32,
    qmin: i64,
    qmax: i64,
    out: &mut [i16],
) {
    for (o, &a) in out.iter_mut().zip(acc) {
        *o = requantize_one(a as i64 + bias, shift, qmin, qmax);
    }
}

pub(crate) fn requantize_i64_row(
    acc: &[i64],
    bias: i64,
    shift: u32,
    qmin: i64,
    qmax: i64,
    out: &mut [i16],
) {
    for (o, &a) in out.iter_mut().zip(acc) {
        *o = requantize_one(a + bias, shift, qmin, qmax);
    }
}

pub(crate) fn requantize_i32_row_biased(
    acc: &[i32],
    biases: &[i64],
    shift: u32,
    qmin: i64,
    qmax: i64,
    out: &mut [i16],
) {
    for ((o, &a), &b) in out.iter_mut().zip(acc).zip(biases) {
        *o = requantize_one(a as i64 + b, shift, qmin, qmax);
    }
}

pub(crate) fn requantize_i64_row_biased(
    acc: &[i64],
    biases: &[i64],
    shift: u32,
    qmin: i64,
    qmax: i64,
    out: &mut [i16],
) {
    for ((o, &a), &b) in out.iter_mut().zip(acc).zip(biases) {
        *o = requantize_one(a + b, shift, qmin, qmax);
    }
}

pub(crate) fn im2row_i16(
    input: &[i16],
    batch: usize,
    channels: usize,
    s: &ConvShape,
    out: &mut [i16],
) {
    let rows = channels * s.kernel_h * s.kernel_w;
    for b in 0..batch {
        for oh in 0..s.out_h {
            for ow in 0..s.out_w {
                let col = (b * s.out_h + oh) * s.out_w + ow;
                let patch = &mut out[col * rows..(col + 1) * rows];
                let mut row = 0usize;
                for c in 0..channels {
                    for kh in 0..s.kernel_h {
                        let ih = (oh * s.stride_h + kh) as isize - s.pad_h as isize;
                        for kw in 0..s.kernel_w {
                            let iw = (ow * s.stride_w + kw) as isize - s.pad_w as isize;
                            patch[row] = if ih >= 0
                                && iw >= 0
                                && (ih as usize) < s.in_h
                                && (iw as usize) < s.in_w
                            {
                                input[((b * channels + c) * s.in_h + ih as usize) * s.in_w
                                    + iw as usize]
                            } else {
                                0
                            };
                            row += 1;
                        }
                    }
                }
            }
        }
    }
}
