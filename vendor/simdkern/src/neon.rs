//! AArch64 NEON matmul kernels (requantize and im2row use the shared
//! portable paths on this architecture).
//!
//! NEON is a baseline feature of the `aarch64` targets this module is
//! compiled for (`target_feature = "neon"` in the gate), which is the safety
//! argument for the `#[target_feature]` functions. The widening
//! multiply-accumulate (`smlal`) and pairwise add-long (`sadalp`) paths are
//! integer-exact under the same operand contracts as the x86 kernels, so
//! results are bitwise equal to the scalar reference.

use core::arch::aarch64::*;

#[target_feature(enable = "neon")]
pub(crate) unsafe fn matmul_wide_i32(a: &[i16], bt: &[i16], k: usize, n: usize, out: &mut [i32]) {
    for (i, out_row) in out.chunks_exact_mut(n).enumerate() {
        let a_row = &a[i * k..(i + 1) * k];
        for (j, bt_row) in bt.chunks_exact(k).enumerate() {
            let mut acc = vdupq_n_s32(0);
            let mut p = 0usize;
            while p + 8 <= k {
                // SAFETY: `p + 8 <= k` bounds the 8-lane loads.
                let av = vld1q_s16(a_row.as_ptr().add(p));
                let bv = vld1q_s16(bt_row.as_ptr().add(p));
                acc = vmlal_s16(acc, vget_low_s16(av), vget_low_s16(bv));
                acc = vmlal_s16(acc, vget_high_s16(av), vget_high_s16(bv));
                p += 8;
            }
            let mut s = vaddvq_s32(acc);
            for (&av, &bv) in a_row[p..].iter().zip(&bt_row[p..]) {
                s += av as i32 * bv as i32;
            }
            out_row[j] = s;
        }
    }
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn matmul_abt_i64(a: &[i16], bt: &[i16], k: usize, n: usize, out: &mut [i64]) {
    for (i, out_row) in out.chunks_exact_mut(n).enumerate() {
        let a_row = &a[i * k..(i + 1) * k];
        for (j, bt_row) in bt.chunks_exact(k).enumerate() {
            let mut acc = vdupq_n_s64(0);
            let mut p = 0usize;
            while p + 8 <= k {
                // SAFETY: `p + 8 <= k` bounds the 8-lane loads.
                let av = vld1q_s16(a_row.as_ptr().add(p));
                let bv = vld1q_s16(bt_row.as_ptr().add(p));
                let lo = vmull_s16(vget_low_s16(av), vget_low_s16(bv));
                let hi = vmull_s16(vget_high_s16(av), vget_high_s16(bv));
                acc = vpadalq_s32(acc, lo);
                acc = vpadalq_s32(acc, hi);
                p += 8;
            }
            let mut s = vaddvq_s64(acc);
            for (&av, &bv) in a_row[p..].iter().zip(&bt_row[p..]) {
                s += av as i64 * bv as i64;
            }
            out_row[j] = s;
        }
    }
}
