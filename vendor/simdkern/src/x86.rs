//! x86-64 vector kernels: AVX2 (matmul + requantize) and SSE4.1 (matmul).
//!
//! Every function here is `#[target_feature]`-gated and therefore `unsafe`
//! to call; the dispatch layer in `lib.rs` only enters them after clamping
//! the requested backend against `is_x86_feature_detected!`, which is the
//! safety argument for the feature gates. The remaining unsafe surface is
//! unaligned vector loads/stores whose in-bounds-ness is established by the
//! surrounding loop conditions (noted per loop, not per intrinsic).
//!
//! # Why these instruction selections are exact
//!
//! * `pmaddwd` (`_mm{,256}_madd_epi16`) multiplies `i16` pairs and adds the
//!   two `i32` products; its only saturation case is both operand pairs at
//!   `-2^15 * -2^15`, which the widened kernel's **i8-range contract** rules
//!   out (|product| <= 2^14, pair sum <= 2^15). With `k < 2^17` each vector
//!   lane accumulates at most `2^13` pair sums, staying below `2^28`; the
//!   horizontal sum reproduces the exact dot product below `2^31`.
//! * `pmuldq` (`_mm{,256}_mul_epi32`) sign-extends the low 32 bits of each
//!   64-bit lane to an exact 64-bit product — full-range `i16` products fit
//!   trivially after `pmovsxwd` widening.
//! * The requantize round-shift uses the branchless identity
//!   `round_shift(v, s) = (v + 2^(s-1) - [v < 0]) >> s` (arithmetic shift,
//!   ties away from zero), with the arithmetic 64-bit shift emulated as a
//!   logical shift OR a precomputed sign fill (AVX2 has no `vpsraq`), and
//!   the `[qmin, qmax]` clamp emulated with `vpcmpgtq` + `vpblendvb` (AVX2
//!   has no 64-bit min/max). All integer-exact, so bitwise equal to scalar.

#![allow(clippy::missing_safety_doc)] // crate-internal; safety is documented at module level

pub(crate) mod avx2 {
    use core::arch::x86_64::*;

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi32(v: __m256i) -> i32 {
        let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_11_10>(s));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_00_01>(s));
        _mm_cvtsi128_si32(s)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi64(v: __m256i) -> i64 {
        let s = _mm_add_epi64(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
        let s = _mm_add_epi64(s, _mm_unpackhi_epi64(s, s));
        _mm_cvtsi128_si64(s)
    }

    /// The i8-range widened matmul block: mirrors the scalar kernel's
    /// 8-row/4-row/fused-remainder register blocking, with the `k` loop
    /// vectorized over 16 `i16` lanes via `pmaddwd`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn matmul_wide_i32(
        a: &[i16],
        bt: &[i16],
        k: usize,
        n: usize,
        out: &mut [i32],
    ) {
        let rows = out.len() / n;
        let mut i = 0usize;
        while i + 8 <= rows {
            wide_i32_rows::<8>(a, bt, k, n, out, i, 8);
            i += 8;
        }
        if i + 4 <= rows {
            wide_i32_rows::<4>(a, bt, k, n, out, i, 4);
            i += 4;
        }
        if i < rows {
            let rem = rows - i;
            wide_i32_rows::<3>(a, bt, k, n, out, i, rem);
        }
    }

    /// One block of up to `R` output rows (`rem <= R` of them live), all
    /// streamed against every `bt` row with per-row `i32` accumulators.
    #[target_feature(enable = "avx2")]
    unsafe fn wide_i32_rows<const R: usize>(
        a: &[i16],
        bt: &[i16],
        k: usize,
        n: usize,
        out: &mut [i32],
        i: usize,
        rem: usize,
    ) {
        let ar: [&[i16]; R] = core::array::from_fn(|r| {
            let row = i + r.min(rem - 1);
            &a[row * k..(row + 1) * k]
        });
        for (j, bt_row) in bt.chunks_exact(k).enumerate() {
            let mut acc = [_mm256_setzero_si256(); R];
            let mut p = 0usize;
            while p + 16 <= k {
                // SAFETY: `p + 16 <= k` and every row slice has length `k`,
                // so the 16-lane unaligned loads stay in bounds.
                let bv = _mm256_loadu_si256(bt_row.as_ptr().add(p) as *const __m256i);
                for (accr, row) in acc[..rem].iter_mut().zip(&ar) {
                    let av = _mm256_loadu_si256(row.as_ptr().add(p) as *const __m256i);
                    *accr = _mm256_add_epi32(*accr, _mm256_madd_epi16(av, bv));
                }
                p += 16;
            }
            for (r, (&accv, row)) in acc[..rem].iter().zip(&ar).enumerate() {
                let mut s = hsum_epi32(accv);
                for (&av, &bv) in row[p..].iter().zip(&bt_row[p..]) {
                    s += av as i32 * bv as i32;
                }
                out[(i + r) * n + j] = s;
            }
        }
    }

    /// The full-range `i16` matmul block (`i64` accumulators): four-row
    /// register blocking, `k` loop vectorized 8 lanes at a time with
    /// `pmovsxwd` widening and even/odd `pmuldq` 64-bit products.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn matmul_abt_i64(
        a: &[i16],
        bt: &[i16],
        k: usize,
        n: usize,
        out: &mut [i64],
    ) {
        let rows = out.len() / n;
        let mut i = 0usize;
        while i < rows {
            let block = (rows - i).min(4);
            let ar: [&[i16]; 4] = core::array::from_fn(|r| {
                let row = i + r.min(block - 1);
                &a[row * k..(row + 1) * k]
            });
            for (j, bt_row) in bt.chunks_exact(k).enumerate() {
                let mut acc_e = [_mm256_setzero_si256(); 4];
                let mut acc_o = [_mm256_setzero_si256(); 4];
                let mut p = 0usize;
                while p + 8 <= k {
                    // SAFETY: `p + 8 <= k`; the 128-bit loads read 8 `i16`s
                    // from slices of length `k`.
                    let b128 = _mm_loadu_si128(bt_row.as_ptr().add(p) as *const __m128i);
                    let bv = _mm256_cvtepi16_epi32(b128);
                    let bh = _mm256_srli_epi64::<32>(bv);
                    for ((acce, acco), row) in acc_e[..block].iter_mut().zip(&mut acc_o).zip(&ar) {
                        let a128 = _mm_loadu_si128(row.as_ptr().add(p) as *const __m128i);
                        let av = _mm256_cvtepi16_epi32(a128);
                        *acce = _mm256_add_epi64(*acce, _mm256_mul_epi32(av, bv));
                        *acco = _mm256_add_epi64(
                            *acco,
                            _mm256_mul_epi32(_mm256_srli_epi64::<32>(av), bh),
                        );
                    }
                    p += 8;
                }
                for (r, ((&acce, &acco), row)) in
                    acc_e[..block].iter().zip(&acc_o).zip(&ar).enumerate()
                {
                    let mut s = hsum_epi64(_mm256_add_epi64(acce, acco));
                    for (&av, &bv) in row[p..].iter().zip(&bt_row[p..]) {
                        s += av as i64 * bv as i64;
                    }
                    out[(i + r) * n + j] = s;
                }
            }
            i += block;
        }
    }

    /// Precomputed vector constants of one requantize row: rounding bias,
    /// arithmetic-shift sign fill, shift count and clamp bounds.
    #[derive(Clone, Copy)]
    struct Requant {
        round: __m256i,
        fill: __m256i,
        cnt: __m128i,
        qmin: __m256i,
        qmax: __m256i,
        shifting: bool,
    }

    #[target_feature(enable = "avx2")]
    unsafe fn requant_consts(shift: u32, qmin: i64, qmax: i64) -> Requant {
        let shifting = shift > 0;
        Requant {
            round: _mm256_set1_epi64x(if shifting { 1i64 << (shift - 1) } else { 0 }),
            fill: _mm256_set1_epi64x(if shifting {
                ((!0u64) << (64 - shift)) as i64
            } else {
                0
            }),
            cnt: _mm_cvtsi64_si128(shift as i64),
            qmin: _mm256_set1_epi64x(qmin),
            qmax: _mm256_set1_epi64x(qmax),
            shifting,
        }
    }

    /// `clamp(round_shift(v, s), qmin, qmax)` on four `i64` lanes, via the
    /// branchless ties-away identity `(v + 2^(s-1) - [v < 0]) >> s` (module
    /// docs); the arithmetic shift is a logical shift OR sign fill.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn requant_quad(c: Requant, v: __m256i) -> __m256i {
        let zero = _mm256_setzero_si256();
        let shifted = if c.shifting {
            let neg = _mm256_cmpgt_epi64(zero, v);
            let t = _mm256_add_epi64(v, _mm256_add_epi64(c.round, neg));
            let tneg = _mm256_cmpgt_epi64(zero, t);
            _mm256_or_si256(_mm256_srl_epi64(t, c.cnt), _mm256_and_si256(tneg, c.fill))
        } else {
            v
        };
        let over = _mm256_cmpgt_epi64(shifted, c.qmax);
        let s = _mm256_blendv_epi8(shifted, c.qmax, over);
        let under = _mm256_cmpgt_epi64(c.qmin, s);
        _mm256_blendv_epi8(s, c.qmin, under)
    }

    /// Narrows two quads of already-clamped `i64` lanes into eight `i16`
    /// codes. The saturating pack is value-preserving: inputs were clamped
    /// into `[qmin, qmax] ⊆ i16`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn pack_store8(dst: *mut i16, a: __m256i, b: __m256i) {
        let idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
        let pa = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(a, idx));
        let pb = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(b, idx));
        // SAFETY: the caller guarantees `dst` points at >= 8 writable i16s.
        _mm_storeu_si128(dst as *mut __m128i, _mm_packs_epi32(pa, pb));
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn requantize_i32_row(
        acc: &[i32],
        bias: i64,
        shift: u32,
        qmin: i64,
        qmax: i64,
        out: &mut [i16],
    ) {
        if shift >= 63 {
            // Degenerate shift: the sign-fill precompute would overflow.
            return crate::scalar::requantize_i32_row(acc, bias, shift, qmin, qmax, out);
        }
        let c = requant_consts(shift, qmin, qmax);
        let biasv = _mm256_set1_epi64x(bias);
        let len = acc.len();
        let mut p = 0usize;
        while p + 8 <= len {
            // SAFETY: `p + 8 <= len == out.len()` (checked by the dispatch
            // layer), covering the 8-lane load and the 8-code store.
            let v32 = _mm256_loadu_si256(acc.as_ptr().add(p) as *const __m256i);
            let lo = _mm256_add_epi64(_mm256_cvtepi32_epi64(_mm256_castsi256_si128(v32)), biasv);
            let hi = _mm256_add_epi64(
                _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(v32)),
                biasv,
            );
            pack_store8(
                out.as_mut_ptr().add(p),
                requant_quad(c, lo),
                requant_quad(c, hi),
            );
            p += 8;
        }
        crate::scalar::requantize_i32_row(&acc[p..], bias, shift, qmin, qmax, &mut out[p..]);
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn requantize_i64_row(
        acc: &[i64],
        bias: i64,
        shift: u32,
        qmin: i64,
        qmax: i64,
        out: &mut [i16],
    ) {
        if shift >= 63 {
            return crate::scalar::requantize_i64_row(acc, bias, shift, qmin, qmax, out);
        }
        let c = requant_consts(shift, qmin, qmax);
        let biasv = _mm256_set1_epi64x(bias);
        let len = acc.len();
        let mut p = 0usize;
        while p + 8 <= len {
            // SAFETY: `p + 8 <= len == out.len()`, covering both 4-lane
            // loads and the 8-code store.
            let lo = _mm256_add_epi64(
                _mm256_loadu_si256(acc.as_ptr().add(p) as *const __m256i),
                biasv,
            );
            let hi = _mm256_add_epi64(
                _mm256_loadu_si256(acc.as_ptr().add(p + 4) as *const __m256i),
                biasv,
            );
            pack_store8(
                out.as_mut_ptr().add(p),
                requant_quad(c, lo),
                requant_quad(c, hi),
            );
            p += 8;
        }
        crate::scalar::requantize_i64_row(&acc[p..], bias, shift, qmin, qmax, &mut out[p..]);
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn requantize_i32_row_biased(
        acc: &[i32],
        biases: &[i64],
        shift: u32,
        qmin: i64,
        qmax: i64,
        out: &mut [i16],
    ) {
        if shift >= 63 {
            return crate::scalar::requantize_i32_row_biased(acc, biases, shift, qmin, qmax, out);
        }
        let c = requant_consts(shift, qmin, qmax);
        let len = acc.len();
        let mut p = 0usize;
        while p + 8 <= len {
            // SAFETY: `p + 8 <= len`, and `biases`/`out` have length `len`
            // (checked by the dispatch layer).
            let v32 = _mm256_loadu_si256(acc.as_ptr().add(p) as *const __m256i);
            let blo = _mm256_loadu_si256(biases.as_ptr().add(p) as *const __m256i);
            let bhi = _mm256_loadu_si256(biases.as_ptr().add(p + 4) as *const __m256i);
            let lo = _mm256_add_epi64(_mm256_cvtepi32_epi64(_mm256_castsi256_si128(v32)), blo);
            let hi = _mm256_add_epi64(
                _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(v32)),
                bhi,
            );
            pack_store8(
                out.as_mut_ptr().add(p),
                requant_quad(c, lo),
                requant_quad(c, hi),
            );
            p += 8;
        }
        crate::scalar::requantize_i32_row_biased(
            &acc[p..],
            &biases[p..],
            shift,
            qmin,
            qmax,
            &mut out[p..],
        );
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn requantize_i64_row_biased(
        acc: &[i64],
        biases: &[i64],
        shift: u32,
        qmin: i64,
        qmax: i64,
        out: &mut [i16],
    ) {
        if shift >= 63 {
            return crate::scalar::requantize_i64_row_biased(acc, biases, shift, qmin, qmax, out);
        }
        let c = requant_consts(shift, qmin, qmax);
        let len = acc.len();
        let mut p = 0usize;
        while p + 8 <= len {
            // SAFETY: `p + 8 <= len`, and `biases`/`out` have length `len`.
            let lo = _mm256_add_epi64(
                _mm256_loadu_si256(acc.as_ptr().add(p) as *const __m256i),
                _mm256_loadu_si256(biases.as_ptr().add(p) as *const __m256i),
            );
            let hi = _mm256_add_epi64(
                _mm256_loadu_si256(acc.as_ptr().add(p + 4) as *const __m256i),
                _mm256_loadu_si256(biases.as_ptr().add(p + 4) as *const __m256i),
            );
            pack_store8(
                out.as_mut_ptr().add(p),
                requant_quad(c, lo),
                requant_quad(c, hi),
            );
            p += 8;
        }
        crate::scalar::requantize_i64_row_biased(
            &acc[p..],
            &biases[p..],
            shift,
            qmin,
            qmax,
            &mut out[p..],
        );
    }
}

pub(crate) mod sse41 {
    use core::arch::x86_64::*;

    #[inline]
    #[target_feature(enable = "sse4.1")]
    unsafe fn hsum_epi32(v: __m128i) -> i32 {
        let s = _mm_add_epi32(v, _mm_shuffle_epi32::<0b00_00_11_10>(v));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_00_01>(s));
        _mm_cvtsi128_si32(s)
    }

    /// The i8-range widened matmul block on 128-bit vectors (`pmaddwd` over
    /// 8 `i16` lanes), same 8/4/fused-remainder blocking as AVX2.
    #[target_feature(enable = "sse4.1")]
    pub(crate) unsafe fn matmul_wide_i32(
        a: &[i16],
        bt: &[i16],
        k: usize,
        n: usize,
        out: &mut [i32],
    ) {
        let rows = out.len() / n;
        let mut i = 0usize;
        while i + 8 <= rows {
            wide_i32_rows::<8>(a, bt, k, n, out, i, 8);
            i += 8;
        }
        if i + 4 <= rows {
            wide_i32_rows::<4>(a, bt, k, n, out, i, 4);
            i += 4;
        }
        if i < rows {
            let rem = rows - i;
            wide_i32_rows::<3>(a, bt, k, n, out, i, rem);
        }
    }

    #[target_feature(enable = "sse4.1")]
    unsafe fn wide_i32_rows<const R: usize>(
        a: &[i16],
        bt: &[i16],
        k: usize,
        n: usize,
        out: &mut [i32],
        i: usize,
        rem: usize,
    ) {
        let ar: [&[i16]; R] = core::array::from_fn(|r| {
            let row = i + r.min(rem - 1);
            &a[row * k..(row + 1) * k]
        });
        for (j, bt_row) in bt.chunks_exact(k).enumerate() {
            let mut acc = [_mm_setzero_si128(); R];
            let mut p = 0usize;
            while p + 8 <= k {
                // SAFETY: `p + 8 <= k` bounds the 8-lane loads.
                let bv = _mm_loadu_si128(bt_row.as_ptr().add(p) as *const __m128i);
                for (accr, row) in acc[..rem].iter_mut().zip(&ar) {
                    let av = _mm_loadu_si128(row.as_ptr().add(p) as *const __m128i);
                    *accr = _mm_add_epi32(*accr, _mm_madd_epi16(av, bv));
                }
                p += 8;
            }
            for (r, (&accv, row)) in acc[..rem].iter().zip(&ar).enumerate() {
                let mut s = hsum_epi32(accv);
                for (&av, &bv) in row[p..].iter().zip(&bt_row[p..]) {
                    s += av as i32 * bv as i32;
                }
                out[(i + r) * n + j] = s;
            }
        }
    }

    /// The full-range `i16` matmul block: 4 `i16`s widened per step
    /// (`pmovsxwd`), even/odd `pmuldq` products into two 2-lane `i64`
    /// accumulators, four-row blocking.
    #[target_feature(enable = "sse4.1")]
    pub(crate) unsafe fn matmul_abt_i64(
        a: &[i16],
        bt: &[i16],
        k: usize,
        n: usize,
        out: &mut [i64],
    ) {
        let rows = out.len() / n;
        let mut i = 0usize;
        while i < rows {
            let block = (rows - i).min(4);
            let ar: [&[i16]; 4] = core::array::from_fn(|r| {
                let row = i + r.min(block - 1);
                &a[row * k..(row + 1) * k]
            });
            for (j, bt_row) in bt.chunks_exact(k).enumerate() {
                let mut acc_e = [_mm_setzero_si128(); 4];
                let mut acc_o = [_mm_setzero_si128(); 4];
                let mut p = 0usize;
                while p + 4 <= k {
                    // SAFETY: `p + 4 <= k` bounds the 64-bit (4 x i16) loads.
                    let b64 = _mm_loadl_epi64(bt_row.as_ptr().add(p) as *const __m128i);
                    let bv = _mm_cvtepi16_epi32(b64);
                    let bh = _mm_srli_epi64::<32>(bv);
                    for ((acce, acco), row) in acc_e[..block].iter_mut().zip(&mut acc_o).zip(&ar) {
                        let a64 = _mm_loadl_epi64(row.as_ptr().add(p) as *const __m128i);
                        let av = _mm_cvtepi16_epi32(a64);
                        *acce = _mm_add_epi64(*acce, _mm_mul_epi32(av, bv));
                        *acco = _mm_add_epi64(*acco, _mm_mul_epi32(_mm_srli_epi64::<32>(av), bh));
                    }
                    p += 4;
                }
                for (r, ((&acce, &acco), row)) in
                    acc_e[..block].iter().zip(&acc_o).zip(&ar).enumerate()
                {
                    let t = _mm_add_epi64(acce, acco);
                    let mut s = _mm_cvtsi128_si64(_mm_add_epi64(t, _mm_unpackhi_epi64(t, t)));
                    for (&av, &bv) in row[p..].iter().zip(&bt_row[p..]) {
                        s += av as i64 * bv as i64;
                    }
                    out[(i + r) * n + j] = s;
                }
            }
            i += block;
        }
    }
}
