//! Runtime-dispatched SIMD kernels for the integer inference hot loops.
//!
//! The fixed-point path in `bnn-tensor`/`bnn-quant` spends almost all of its
//! time in four loop families: the i8-range widened matmul (`i16` operands,
//! `i32` accumulator), the full-range `i16` matmul (`i64` accumulator), the
//! requantize loop (round-shift + saturate a whole accumulator row into
//! `i16` codes), and the `i16` im2row fill. This crate provides explicit
//! `core::arch` implementations of those loops for x86-64 (AVX2 and SSE4.1)
//! and AArch64 (NEON, matmuls only), selected **once** at startup via
//! [`Backend::detect`] (`is_x86_feature_detected!` under the hood) and the
//! `BNN_SIMD` environment variable:
//!
//! | `BNN_SIMD`            | effect                                        |
//! |-----------------------|-----------------------------------------------|
//! | unset / `auto`        | best available backend for the host CPU       |
//! | `scalar`              | force the scalar reference kernels            |
//! | `avx2`, `sse4.1`, `neon` | force that backend *if available*, else scalar |
//!
//! Unrecognised or unavailable values fall back to `scalar` — the
//! conservative choice; `make bench-save` records the active backend in the
//! benchmark JSON so a silent fallback stays visible.
//!
//! # Bit-exactness contract
//!
//! Every kernel here computes mathematically exact integer results: products
//! and partial sums provably fit their accumulator type (the callers enforce
//! the `k < 2^17` bound of the widened kernel), so no reduction order can
//! change a single bit, and the vector kernels are required to agree with
//! the scalar reference **bitwise** for every backend, format, shape and
//! thread count. `tests/simd_parity.rs` at the workspace root sweeps exactly
//! that matrix; [`set_override`] is the hook it uses to force each backend
//! in turn.
//!
//! # Unsafe scoping
//!
//! This is the only crate in the workspace allowed to use `unsafe` besides
//! `alloc-counter` (see the workspace `forbid(unsafe_code)` lint and the
//! note in this crate's `Cargo.toml`). The unsafe surface is confined to
//! feature-gated intrinsic calls: dispatch clamps any requested backend to
//! the host's detected capabilities (see [`Backend::clamped`]) before
//! entering a `#[target_feature]` function, so the required ISA extension is
//! always present, and in-bounds pointer arithmetic for vector loads/stores
//! is established by the surrounding loop conditions.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

#[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
mod neon;

/// Environment variable selecting the kernel backend (`auto`, `scalar`,
/// `sse4.1`, `avx2`, `neon`).
pub const SIMD_ENV_VAR: &str = "BNN_SIMD";

/// A kernel backend. All variants exist on every architecture so that
/// configuration and diagnostics code is portable; [`Backend::is_available`]
/// reports whether the host can actually execute one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Backend {
    /// The portable scalar reference kernels.
    Scalar = 0,
    /// x86-64 SSE4.1 (`pmaddwd`, `pmuldq`): vectorized matmul inner loops.
    Sse41 = 1,
    /// x86-64 AVX2: vectorized matmul, requantize and im2row loops.
    Avx2 = 2,
    /// AArch64 NEON: vectorized matmul inner loops.
    Neon = 3,
}

impl Backend {
    /// Every backend, in increasing preference order.
    pub const ALL: [Backend; 4] = [
        Backend::Scalar,
        Backend::Sse41,
        Backend::Avx2,
        Backend::Neon,
    ];

    /// The best backend the host CPU can execute.
    pub fn detect() -> Backend {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") {
                return Backend::Avx2;
            }
            if is_x86_feature_detected!("sse4.1") {
                return Backend::Sse41;
            }
        }
        #[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
        {
            return Backend::Neon;
        }
        #[allow(unreachable_code)]
        Backend::Scalar
    }

    /// Whether the host CPU can execute this backend's kernels.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Sse41 => is_x86_feature_detected!("sse4.1"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
            Backend::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// This backend if the host supports it, otherwise [`Backend::Scalar`].
    ///
    /// Every dispatch function clamps through this, which is what makes the
    /// public API sound: a `Backend` value is plain data, so safe code could
    /// otherwise smuggle an unsupported backend into a kernel call.
    pub fn clamped(self) -> Backend {
        if self.is_available() {
            self
        } else {
            Backend::Scalar
        }
    }

    /// The canonical lower-case name (`scalar`, `sse4.1`, `avx2`, `neon`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse41 => "sse4.1",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// Parses a backend name as accepted by the `BNN_SIMD` environment
    /// variable (`sse41` is accepted as an alias of `sse4.1`).
    pub fn from_name(name: &str) -> Option<Backend> {
        match name {
            "scalar" => Some(Backend::Scalar),
            "sse4.1" | "sse41" => Some(Backend::Sse41),
            "avx2" => Some(Backend::Avx2),
            "neon" => Some(Backend::Neon),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Backend {
        match v {
            1 => Backend::Sse41,
            2 => Backend::Avx2,
            3 => Backend::Neon,
            _ => Backend::Scalar,
        }
    }
}

/// The backends the host CPU can execute, scalar first.
pub fn available() -> Vec<Backend> {
    Backend::ALL
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

/// Resolves a `BNN_SIMD`-style request against the host CPU: `None`, the
/// empty string and `auto` auto-detect; anything else must name an available
/// backend or the result is [`Backend::Scalar`].
pub fn select(request: Option<&str>) -> Backend {
    match request.map(str::trim) {
        None | Some("") | Some("auto") => Backend::detect(),
        Some(name) => match Backend::from_name(name) {
            Some(b) if b.is_available() => b,
            _ => Backend::Scalar,
        },
    }
}

/// `0` = no override; otherwise `Backend as u8 + 1`. Tests use this to force
/// each backend in turn without re-reading the environment.
static FORCED: AtomicU8 = AtomicU8::new(0);
/// The env-resolved backend, computed once on first use.
static ENV_CHOICE: OnceLock<Backend> = OnceLock::new();

/// The backend integer kernels currently dispatch to: the [`set_override`]
/// value if one is set, otherwise the `BNN_SIMD`/auto-detected choice
/// (resolved once per process).
pub fn active() -> Backend {
    match FORCED.load(Ordering::Relaxed) {
        0 => *ENV_CHOICE.get_or_init(|| select(std::env::var(SIMD_ENV_VAR).ok().as_deref())),
        v => Backend::from_u8(v - 1),
    }
}

/// Forces (`Some`) or releases (`None`) the active backend, overriding the
/// environment. Unavailable backends are clamped to scalar at dispatch time,
/// so forcing one is safe but pointless; the parity tests iterate
/// [`available`] instead. Process-global: concurrent tests must serialise
/// around it.
pub fn set_override(backend: Option<Backend>) {
    FORCED.store(
        match backend {
            None => 0,
            Some(b) => b as u8 + 1,
        },
        Ordering::Relaxed,
    );
}

/// Convolution/im2row geometry, mirroring `bnn-tensor`'s `ConvGeometry` plus
/// the derived output extent (this crate sits below `bnn-tensor` in the
/// dependency graph, so it cannot use that type directly).
#[derive(Debug, Clone, Copy)]
pub struct ConvShape {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
    /// Vertical zero padding.
    pub pad_h: usize,
    /// Horizontal zero padding.
    pub pad_w: usize,
    /// Output height (already derived from the above).
    pub out_h: usize,
    /// Output width (already derived from the above).
    pub out_w: usize,
}

fn check_matmul(a: &[i16], bt: &[i16], k: usize, n: usize, out_len: usize) -> usize {
    assert!(n > 0 && k > 0, "simdkern matmul: empty reduction or width");
    assert_eq!(
        out_len % n,
        0,
        "simdkern matmul: out length not a row multiple"
    );
    let rows = out_len / n;
    assert_eq!(a.len(), rows * k, "simdkern matmul: lhs length mismatch");
    assert_eq!(bt.len(), n * k, "simdkern matmul: rhs length mismatch");
    rows
}

/// Multiplies `a` (`rows x k`, i8-range values widened to `i16`) by the
/// transpose of `bt` (`n x k`) into the exact `i32` accumulator block `out`
/// (`rows x k`-derived `rows x n`, fully overwritten) — the inner block of
/// `bnn_tensor::int::matmul_wide_i32_into`.
///
/// The caller guarantees i8-range operands and `k < 2^17` (the exact-`i32`
/// bound); under that contract every backend produces identical bits.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `k`/`n`.
pub fn matmul_wide_i32(
    backend: Backend,
    a: &[i16],
    bt: &[i16],
    k: usize,
    n: usize,
    out: &mut [i32],
) {
    check_matmul(a, bt, k, n, out.len());
    match backend.clamped() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamped` returned this backend, so the required CPU
        // features were runtime-detected on this host.
        Backend::Avx2 => unsafe { x86::avx2::matmul_wide_i32(a, bt, k, n, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — SSE4.1 is available.
        Backend::Sse41 => unsafe { x86::sse41::matmul_wide_i32(a, bt, k, n, out) },
        #[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
        // SAFETY: NEON is a baseline feature of this build target.
        Backend::Neon => unsafe { neon::matmul_wide_i32(a, bt, k, n, out) },
        _ => scalar::matmul_wide_i32(a, bt, k, n, out),
    }
}

/// Multiplies `a` (`rows x k`, full-range `i16`) by the transpose of `bt`
/// (`n x k`) into the exact `i64` accumulator block `out` — the inner block
/// of `bnn_tensor::int::matmul_abt_i64_into`.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `k`/`n`.
pub fn matmul_abt_i64(
    backend: Backend,
    a: &[i16],
    bt: &[i16],
    k: usize,
    n: usize,
    out: &mut [i64],
) {
    check_matmul(a, bt, k, n, out.len());
    match backend.clamped() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamped` guarantees AVX2 was runtime-detected.
        Backend::Avx2 => unsafe { x86::avx2::matmul_abt_i64(a, bt, k, n, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamped` guarantees SSE4.1 was runtime-detected.
        Backend::Sse41 => unsafe { x86::sse41::matmul_abt_i64(a, bt, k, n, out) },
        #[cfg(all(target_arch = "aarch64", target_feature = "neon"))]
        // SAFETY: NEON is a baseline feature of this build target.
        Backend::Neon => unsafe { neon::matmul_abt_i64(a, bt, k, n, out) },
        _ => scalar::matmul_abt_i64(a, bt, k, n, out),
    }
}

fn check_requant(acc_len: usize, out_len: usize, qmin: i64, qmax: i64) {
    assert_eq!(acc_len, out_len, "simdkern requantize: length mismatch");
    assert!(
        qmin >= i16::MIN as i64 && qmax <= i16::MAX as i64 && qmin <= qmax,
        "simdkern requantize: bounds must fit i16"
    );
}

/// Requantizes one `i32` accumulator row:
/// `out[i] = clamp(round_shift(acc[i] + bias, shift), qmin, qmax)` with
/// round-to-nearest, ties away from zero — the per-output-channel
/// constant-bias loop of the quantized conv step. `shift` is non-negative by
/// construction (the caller keeps the rare scale-up case on its scalar
/// path).
///
/// # Panics
///
/// Panics if lengths differ or `[qmin, qmax]` does not fit `i16`.
pub fn requantize_i32_row(
    backend: Backend,
    acc: &[i32],
    bias: i64,
    shift: u32,
    qmin: i64,
    qmax: i64,
    out: &mut [i16],
) {
    check_requant(acc.len(), out.len(), qmin, qmax);
    match backend.clamped() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamped` guarantees AVX2 was runtime-detected.
        Backend::Avx2 => unsafe {
            x86::avx2::requantize_i32_row(acc, bias, shift, qmin, qmax, out)
        },
        _ => scalar::requantize_i32_row(acc, bias, shift, qmin, qmax, out),
    }
}

/// [`requantize_i32_row`] for `i64` accumulators (the wide-format path).
///
/// # Panics
///
/// Panics if lengths differ or `[qmin, qmax]` does not fit `i16`.
pub fn requantize_i64_row(
    backend: Backend,
    acc: &[i64],
    bias: i64,
    shift: u32,
    qmin: i64,
    qmax: i64,
    out: &mut [i16],
) {
    check_requant(acc.len(), out.len(), qmin, qmax);
    match backend.clamped() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamped` guarantees AVX2 was runtime-detected.
        Backend::Avx2 => unsafe {
            x86::avx2::requantize_i64_row(acc, bias, shift, qmin, qmax, out)
        },
        _ => scalar::requantize_i64_row(acc, bias, shift, qmin, qmax, out),
    }
}

/// Requantizes one `i32` accumulator row with a per-element bias
/// (`biases.len() == acc.len()`) — the dense-layer loop, where each output
/// feature has its own bias.
///
/// # Panics
///
/// Panics if lengths differ or `[qmin, qmax]` does not fit `i16`.
pub fn requantize_i32_row_biased(
    backend: Backend,
    acc: &[i32],
    biases: &[i64],
    shift: u32,
    qmin: i64,
    qmax: i64,
    out: &mut [i16],
) {
    check_requant(acc.len(), out.len(), qmin, qmax);
    assert_eq!(
        acc.len(),
        biases.len(),
        "simdkern requantize: bias length mismatch"
    );
    match backend.clamped() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamped` guarantees AVX2 was runtime-detected.
        Backend::Avx2 => unsafe {
            x86::avx2::requantize_i32_row_biased(acc, biases, shift, qmin, qmax, out)
        },
        _ => scalar::requantize_i32_row_biased(acc, biases, shift, qmin, qmax, out),
    }
}

/// [`requantize_i32_row_biased`] for `i64` accumulators.
///
/// # Panics
///
/// Panics if lengths differ or `[qmin, qmax]` does not fit `i16`.
pub fn requantize_i64_row_biased(
    backend: Backend,
    acc: &[i64],
    biases: &[i64],
    shift: u32,
    qmin: i64,
    qmax: i64,
    out: &mut [i16],
) {
    check_requant(acc.len(), out.len(), qmin, qmax);
    assert_eq!(
        acc.len(),
        biases.len(),
        "simdkern requantize: bias length mismatch"
    );
    match backend.clamped() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamped` guarantees AVX2 was runtime-detected.
        Backend::Avx2 => unsafe {
            x86::avx2::requantize_i64_row_biased(acc, biases, shift, qmin, qmax, out)
        },
        _ => scalar::requantize_i64_row_biased(acc, biases, shift, qmin, qmax, out),
    }
}

/// Fills the transposed im2row layout (`cols x rows` patches, one contiguous
/// `rows`-length patch per output position, padding taps zero) from an NCHW
/// `i16` code tensor — the inner fill of `bnn_tensor::int::im2row_i16_into`.
///
/// The vector backends hoist the bounds checks out of the tap loop, splitting
/// every `(channel, kernel-row)` segment into zero-filled padding and one
/// contiguous in-bounds copy; the scalar backend is the naive per-tap
/// reference. Identical output either way.
///
/// # Panics
///
/// Panics if `input` or `out` is inconsistent with the shape.
pub fn im2row_i16(
    backend: Backend,
    input: &[i16],
    batch: usize,
    channels: usize,
    shape: &ConvShape,
    out: &mut [i16],
) {
    let rows = channels * shape.kernel_h * shape.kernel_w;
    let cols = batch * shape.out_h * shape.out_w;
    assert_eq!(
        input.len(),
        batch * channels * shape.in_h * shape.in_w,
        "simdkern im2row: input length mismatch"
    );
    assert_eq!(
        out.len(),
        rows * cols,
        "simdkern im2row: output length mismatch"
    );
    match backend.clamped() {
        Backend::Scalar => scalar::im2row_i16(input, batch, channels, shape, out),
        // The hoisted fill is plain safe code shared by every vector
        // backend; the only SIMD in it is the run copy, which the element
        // loop lowers to the widest available moves. Hoisting only pays
        // when the per-(channel, kernel-row) run is long enough to
        // amortize the range-split bookkeeping; for the 3x5-tap kernel
        // rows of typical convs the naive fill's predictable per-tap
        // branch is cheaper, so short rows stay on the scalar reference
        // (identical bits either way).
        _ if shape.kernel_w >= HOISTED_IM2ROW_MIN_KERNEL_W => {
            hoisted_im2row_i16(input, batch, channels, shape, out)
        }
        _ => scalar::im2row_i16(input, batch, channels, shape, out),
    }
}

/// Minimum kernel-row width (in taps) before the branch-hoisted im2row fill
/// beats the naive per-tap loop; below this the range-split bookkeeping
/// costs more than the predictable bounds branches it removes.
const HOISTED_IM2ROW_MIN_KERNEL_W: usize = 16;

/// The branch-hoisted im2row fill used by every non-scalar backend: per
/// `(patch, channel, kernel-row)` segment, the in-bounds tap range is
/// computed once and copied contiguously, and the padding prefix/suffix is
/// zero-filled — no per-tap bounds checks.
fn hoisted_im2row_i16(
    input: &[i16],
    batch: usize,
    channels: usize,
    s: &ConvShape,
    out: &mut [i16],
) {
    let rows = channels * s.kernel_h * s.kernel_w;
    for b in 0..batch {
        for oh in 0..s.out_h {
            for ow in 0..s.out_w {
                let col = (b * s.out_h + oh) * s.out_w + ow;
                let patch = &mut out[col * rows..(col + 1) * rows];
                // Horizontal tap range with an in-bounds input column:
                // kw in [kw_lo, kw_hi) <=> 0 <= ow*stride_w + kw - pad_w < in_w.
                let iw0 = (ow * s.stride_w) as isize - s.pad_w as isize;
                let kw_lo = (-iw0).clamp(0, s.kernel_w as isize) as usize;
                let kw_hi = (s.in_w as isize - iw0).clamp(0, s.kernel_w as isize) as usize;
                for c in 0..channels {
                    let in_plane = &input[(b * channels + c) * s.in_h * s.in_w
                        ..(b * channels + c + 1) * s.in_h * s.in_w];
                    for kh in 0..s.kernel_h {
                        let seg_base = (c * s.kernel_h + kh) * s.kernel_w;
                        let seg = &mut patch[seg_base..seg_base + s.kernel_w];
                        let ih = (oh * s.stride_h + kh) as isize - s.pad_h as isize;
                        if ih < 0 || ih as usize >= s.in_h || kw_lo >= kw_hi {
                            for v in seg.iter_mut() {
                                *v = 0;
                            }
                            continue;
                        }
                        let in_row = &in_plane[ih as usize * s.in_w..(ih as usize + 1) * s.in_w];
                        let start = (iw0 + kw_lo as isize) as usize;
                        // Explicit element loops: kernel rows are a handful of
                        // elements, where `copy_from_slice`/`fill`'s memcpy /
                        // memset call overhead costs more than the copy itself.
                        for v in seg[..kw_lo].iter_mut() {
                            *v = 0;
                        }
                        for (v, &x) in seg[kw_lo..kw_hi].iter_mut().zip(&in_row[start..]) {
                            *v = x;
                        }
                        for v in seg[kw_hi..].iter_mut() {
                            *v = 0;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deterministic_codes(n: usize, seed: u64) -> Vec<i16> {
        // SplitMix64, inlined to keep this crate dependency-free.
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                (z ^ (z >> 31)) as i16
            })
            .collect()
    }

    fn i8_range(codes: &[i16]) -> Vec<i16> {
        codes.iter().map(|&v| (v as i8) as i16).collect()
    }

    #[test]
    fn backend_names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("sse41"), Some(Backend::Sse41));
        assert_eq!(Backend::from_name("mmx"), None);
    }

    #[test]
    fn select_honours_requests_and_falls_back() {
        assert_eq!(select(Some("scalar")), Backend::Scalar);
        assert_eq!(select(Some("definitely-not-a-backend")), Backend::Scalar);
        assert_eq!(select(None), Backend::detect());
        assert_eq!(select(Some("auto")), Backend::detect());
        assert_eq!(select(Some(" auto ")), Backend::detect());
        // Scalar is always available and always first in the listing.
        assert_eq!(available()[0], Backend::Scalar);
    }

    #[test]
    fn vector_matmuls_match_scalar_bitwise() {
        for &(m, k, n) in &[
            (1usize, 7usize, 1usize),
            (3, 16, 5),
            (8, 33, 9),
            (13, 40, 17),
        ] {
            let a = i8_range(&deterministic_codes(m * k, 1));
            let bt = i8_range(&deterministic_codes(n * k, 2));
            let mut reference = vec![0i32; m * n];
            scalar::matmul_wide_i32(&a, &bt, k, n, &mut reference);
            let aw = deterministic_codes(m * k, 3);
            let btw = deterministic_codes(n * k, 4);
            let mut reference64 = vec![0i64; m * n];
            scalar::matmul_abt_i64(&aw, &btw, k, n, &mut reference64);
            for backend in available() {
                let mut out = vec![0i32; m * n];
                matmul_wide_i32(backend, &a, &bt, k, n, &mut out);
                assert_eq!(out, reference, "wide_i32 {backend:?} {m}x{k}x{n}");
                let mut out64 = vec![0i64; m * n];
                matmul_abt_i64(backend, &aw, &btw, k, n, &mut out64);
                assert_eq!(out64, reference64, "abt_i64 {backend:?} {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn vector_requantize_matches_scalar_bitwise() {
        let acc32: Vec<i32> = deterministic_codes(1031, 5)
            .iter()
            .map(|&v| v as i32 * 40503)
            .collect();
        let acc64: Vec<i64> = acc32.iter().map(|&v| v as i64 * 3037).collect();
        let biases: Vec<i64> = deterministic_codes(1031, 6)
            .iter()
            .map(|&v| v as i64)
            .collect();
        for shift in [0u32, 1, 7, 13] {
            for &(qmin, qmax) in &[
                (-128i64, 127i64),
                (-8, 7),
                (i16::MIN as i64, i16::MAX as i64),
            ] {
                let mut reference = vec![0i16; acc32.len()];
                scalar::requantize_i32_row(&acc32, -3, shift, qmin, qmax, &mut reference);
                let mut ref64 = vec![0i16; acc64.len()];
                scalar::requantize_i64_row(&acc64, 11, shift, qmin, qmax, &mut ref64);
                let mut ref_biased = vec![0i16; acc32.len()];
                scalar::requantize_i32_row_biased(
                    &acc32,
                    &biases,
                    shift,
                    qmin,
                    qmax,
                    &mut ref_biased,
                );
                let mut ref64_biased = vec![0i16; acc64.len()];
                scalar::requantize_i64_row_biased(
                    &acc64,
                    &biases,
                    shift,
                    qmin,
                    qmax,
                    &mut ref64_biased,
                );
                for backend in available() {
                    let mut out = vec![0i16; acc32.len()];
                    requantize_i32_row(backend, &acc32, -3, shift, qmin, qmax, &mut out);
                    assert_eq!(out, reference, "{backend:?} shift={shift}");
                    requantize_i64_row(backend, &acc64, 11, shift, qmin, qmax, &mut out);
                    assert_eq!(out, ref64, "{backend:?} shift={shift} i64");
                    requantize_i32_row_biased(
                        backend, &acc32, &biases, shift, qmin, qmax, &mut out,
                    );
                    assert_eq!(out, ref_biased, "{backend:?} shift={shift} biased");
                    requantize_i64_row_biased(
                        backend, &acc64, &biases, shift, qmin, qmax, &mut out,
                    );
                    assert_eq!(out, ref64_biased, "{backend:?} shift={shift} i64 biased");
                }
            }
        }
    }

    #[test]
    fn requantize_rounds_ties_away_from_zero() {
        // Direct check of the branchless identity the vector path uses:
        // (v + 2^(s-1) - [v < 0]) >> s  ==  round-to-nearest, ties away.
        let acc: Vec<i32> = (-64..=64).collect();
        let mut out = vec![0i16; acc.len()];
        for backend in available() {
            requantize_i32_row(backend, &acc, 0, 2, -1000, 1000, &mut out);
            for (&v, &o) in acc.iter().zip(&out) {
                let expected = (v as f64 / 4.0).round() as i64;
                assert_eq!(o as i64, expected, "{backend:?} v={v}");
            }
        }
    }

    #[test]
    fn hoisted_im2row_matches_scalar_bitwise() {
        for &(kernel, stride, pad) in &[(1usize, 1usize, 0usize), (3, 1, 1), (3, 2, 0), (5, 2, 2)] {
            let (in_h, in_w) = (9usize, 7usize);
            let out_h = (in_h + 2 * pad - kernel) / stride + 1;
            let out_w = (in_w + 2 * pad - kernel) / stride + 1;
            let shape = ConvShape {
                in_h,
                in_w,
                kernel_h: kernel,
                kernel_w: kernel,
                stride_h: stride,
                stride_w: stride,
                pad_h: pad,
                pad_w: pad,
                out_h,
                out_w,
            };
            let (batch, channels) = (2usize, 3usize);
            let input = deterministic_codes(batch * channels * in_h * in_w, 7);
            let rows = channels * kernel * kernel;
            let cols = batch * out_h * out_w;
            let mut reference = vec![0i16; rows * cols];
            scalar::im2row_i16(&input, batch, channels, &shape, &mut reference);
            let mut hoisted = vec![-1i16; rows * cols];
            hoisted_im2row_i16(&input, batch, channels, &shape, &mut hoisted);
            assert_eq!(hoisted, reference, "k={kernel} s={stride} p={pad}");
        }
    }
}
