//! Offline stand-in for the [proptest](https://docs.rs/proptest) property
//! testing framework.
//!
//! The build container has no network access, so the real crates.io
//! `proptest` cannot be fetched. This shim implements the subset the
//! workspace tests use — the `proptest!` macro with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, numeric range
//! strategies, `any::<T>()`, `proptest::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` macros — with **deterministic**
//! sampling (seeded per test from its module path and name) and no
//! shrinking. Failures therefore reproduce exactly across runs.

#![forbid(unsafe_code)]

/// Deterministic sample source used by the [`proptest!`] macro expansion.
pub mod sample {
    /// SplitMix64 generator seeded from a test's fully qualified name.
    pub struct SampleRng {
        state: u64,
    }

    impl SampleRng {
        /// Seed deterministically from an arbitrary string (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            SampleRng { state: hash | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies (ranges, `any`, collections).
pub mod strategy {
    use crate::sample::SampleRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of sampled values, mirroring `proptest::strategy::Strategy`
    /// in name only (sampling, no value trees / shrinking).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut SampleRng) -> Self::Value;
    }

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SampleRng) -> $t {
                    // Casting to f32 can round the scaled draw up to exactly
                    // `end`; remap that to `start` to keep the range half-open.
                    let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                    if v >= self.end { self.start } else { v }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SampleRng) -> $t {
                    // Scale by a draw from [0, 1] (both ends reachable) so the
                    // inclusive end can actually be produced.
                    let t = rng.next_u64() as f64 / u64::MAX as f64;
                    self.start() + (self.end() - self.start()) * t as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    // Widths are computed in i128 so ranges spanning more than half the
    // element type's domain (e.g. `-100i8..100`) cannot overflow.
    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SampleRng) -> $t {
                    let width = (self.end as i128 - self.start as i128) as u128;
                    assert!(width > 0, "empty integer range strategy");
                    (self.start as i128 + rng.below(width as u64) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SampleRng) -> $t {
                    let width = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let draw = if width > u64::MAX as u128 {
                        rng.next_u64() // full-domain range: every draw is valid
                    } else {
                        rng.below(width as u64)
                    };
                    (*self.start() as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct AnyStrategy<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! any_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SampleRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut SampleRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut SampleRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }
}

/// `any::<T>()` support, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use crate::strategy::AnyStrategy;

    /// Produce a strategy sampling the full domain of `T`.
    pub fn any<T>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::sample::SampleRng;
    use crate::strategy::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with lengths inside a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values drawn from `element`, with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SampleRng) -> Vec<S::Value> {
            let len =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Run configuration, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// Number-of-cases configuration (`ProptestConfig` in the prelude).
    pub struct Config {
        /// How many sampled cases each property test runs.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` sampled inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that deterministically samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut sampler = $crate::sample::SampleRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut sampler);)+
                    // Mirror real proptest: the body may `return Ok(())` early
                    // (its tests are `Result`-valued), so run it inside a
                    // `Result`-returning closure.
                    let outcome: ::core::result::Result<
                        (),
                        ::std::boxed::Box<dyn ::std::error::Error>,
                    > = (|| {
                        $body
                        Ok(())
                    })();
                    outcome.expect("property returned an error");
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}
