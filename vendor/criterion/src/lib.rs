//! Offline stand-in for the [criterion](https://docs.rs/criterion) benchmark
//! harness.
//!
//! The build container has no network access, so the real crates.io
//! `criterion` cannot be fetched. This shim implements the small API surface
//! the workspace benches use — `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, plus the `criterion_group!` /
//! `criterion_main!` macros — with real wall-clock measurement and a plain
//! text report (median / mean / min over the sample window).
//!
//! It is intentionally tiny: no statistical outlier analysis, no HTML
//! reports, no comparison against saved baselines. Swapping back to the real
//! criterion later only requires replacing the `[patch]`-style path
//! dependency; no bench source changes are needed.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
///
/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench executables with `--bench` (and any user filter
        // after `--`). Accept the flags the real criterion accepts and treat
        // the first free-standing token as a substring filter.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--test" | "--nocapture" | "--noplot" | "--quiet" => {}
                s if s.starts_with("--") => {}
                s => {
                    filter = Some(s.to_string());
                    break;
                }
            }
        }
        Criterion { filter }
    }
}

impl Criterion {
    /// Mirror of `configure_from_args`; argument parsing already happened in
    /// [`Criterion::default`], so this is the identity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let filter_pass = self
            .filter
            .as_deref()
            .map_or(true, |needle| id.contains(needle));
        if filter_pass {
            run_one(id, 100, f);
        }
        self
    }
}

/// A named group of benchmarks sharing a sample-size configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `f` and print a one-line summary as `group/id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let filter_pass = self
            .criterion
            .filter
            .as_deref()
            .map_or(true, |needle| full.contains(needle));
        if filter_pass {
            run_one(&full, self.sample_size, f);
        }
        self
    }

    /// End the group. (The real criterion emits summary plots here.)
    pub fn finish(self) {}
}

/// Identifier helper mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Build an id from a displayable parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Per-benchmark timing handle passed to the closure given to
/// `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    per_sample: usize,
}

impl Bencher {
    /// Run `f` repeatedly, recording one wall-clock duration per sample.
    ///
    /// Each sample batches enough iterations to exceed ~1 ms so that very fast
    /// kernels are still measured above timer resolution.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch calibration: grow the batch until one batch takes
        // at least ~1 ms (capped to keep total runtime bounded).
        let mut batch = 1usize;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.per_sample = batch;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        per_sample: 1,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<48} (no samples collected)");
        return;
    }
    let per_iter: Vec<Duration> = bencher
        .samples
        .iter()
        .map(|d| *d / bencher.per_sample as u32)
        .collect();
    let mut sorted = per_iter.clone();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let total: Duration = per_iter.iter().sum();
    let mean = total / per_iter.len() as u32;
    let mut line = String::new();
    let _ = write!(
        line,
        "{id:<48} median {:>10}   mean {:>10}   min {:>10}   ({} samples x {} iters)",
        format_duration(median),
        format_duration(mean),
        format_duration(min),
        per_iter.len(),
        bencher.per_sample,
    );
    println!("{line}");
}

/// Mirror of `criterion::criterion_group!`: bundles bench functions into a
/// single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc = "Criterion benchmark group runner."]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`: generates `fn main` running each
/// group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
