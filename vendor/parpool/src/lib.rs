//! Offline stand-in for a work-stealing thread-pool crate (rayon-style).
//!
//! The build container has no network access, so this crate provides the
//! small parallel-iteration surface the workspace needs on top of
//! `std::thread::scope`: an [`Executor`] handle with order-preserving
//! `par_map_indexed` / `par_map_mut` / `par_chunks` / `par_chunks_mut`.
//!
//! # Design
//!
//! * **Scoped, not persistent.** Every parallel call opens a
//!   [`std::thread::scope`], spawns up to `threads - 1` workers (the calling
//!   thread is worker 0) and joins them before returning. Closures may borrow
//!   from the caller's stack; no `'static` bounds, no job boxing.
//! * **Dynamic scheduling, deterministic results.** Read-only maps pull item
//!   indices from a shared atomic counter (cheap work stealing), so uneven
//!   item costs balance across workers. Results are written back by item
//!   index, so the output order always matches the input order regardless of
//!   which worker computed what.
//! * **No nested oversubscription.** A parallel call issued from inside a
//!   pool worker runs inline on that worker (see [`in_parallel_region`]), so
//!   coarse-grained outer parallelism (e.g. per-candidate training) is never
//!   multiplied by inner kernel parallelism.
//! * **Determinism contract.** The functions here never reorder, split or
//!   merge the *computation* of a single item — an item's closure runs
//!   exactly once on exactly one thread — so any per-item computation that is
//!   itself deterministic yields bitwise-identical output for every thread
//!   count, including 1.
//!
//! Worker panics are propagated to the caller after all workers have joined.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Name of the environment variable overriding the default thread count.
pub const THREADS_ENV_VAR: &str = "BNN_THREADS";

/// Process-wide thread-count override installed by [`set_global_threads`]
/// (0 means "not set": fall back to the environment / hardware default).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while the current thread is executing inside a parallel region.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Returns `true` when called from inside a worker of an active parallel
/// region (including the calling thread of that region). Parallel calls made
/// in this state run inline instead of spawning nested workers.
pub fn in_parallel_region() -> bool {
    IN_POOL.with(Cell::get)
}

/// Installs a process-wide default thread count returned by
/// [`Executor::global`], overriding both `BNN_THREADS` and the hardware
/// default. Pass the result of [`reset_global_threads`] semantics via that
/// function instead of 0 here; the count is clamped to at least 1.
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.store(threads.max(1), Ordering::SeqCst);
}

/// Removes the override installed by [`set_global_threads`], restoring the
/// `BNN_THREADS` / hardware default resolution.
pub fn reset_global_threads() {
    GLOBAL_THREADS.store(0, Ordering::SeqCst);
}

/// RAII guard marking the current thread as a pool worker.
struct RegionGuard {
    was_in_pool: bool,
}

impl RegionGuard {
    fn enter() -> Self {
        let was_in_pool = IN_POOL.with(|c| c.replace(true));
        RegionGuard { was_in_pool }
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        IN_POOL.with(|c| c.set(self.was_in_pool));
    }
}

/// A lightweight handle describing how many threads parallel calls may use.
///
/// The executor carries no worker state — threads are scoped to each call —
/// so it is `Copy` and freely embeddable in configuration structs. An
/// executor with one thread runs everything inline, which is also the exact
/// execution used for the portions of work each worker receives in the
/// multi-threaded case; results are therefore identical for every thread
/// count.
///
/// # Example
///
/// ```
/// use parpool::Executor;
///
/// let exec = Executor::new(4);
/// let squares = exec.par_map_indexed(&[1, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::global()
    }
}

impl Executor {
    /// An executor using exactly `threads` threads (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The single-threaded executor: every parallel call runs inline.
    pub fn sequential() -> Self {
        Executor { threads: 1 }
    }

    /// Resolves the thread count from the `BNN_THREADS` environment variable,
    /// falling back to [`std::thread::available_parallelism`] when the
    /// variable is unset or unparsable.
    pub fn from_env() -> Self {
        let from_env = std::env::var(THREADS_ENV_VAR)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        let threads = from_env.unwrap_or_else(|| {
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        Executor::new(threads)
    }

    /// The process default: the [`set_global_threads`] override when
    /// installed, otherwise [`Executor::from_env`].
    pub fn global() -> Self {
        match GLOBAL_THREADS.load(Ordering::SeqCst) {
            0 => Executor::from_env(),
            n => Executor::new(n),
        }
    }

    /// The number of threads parallel calls may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of workers a parallel region over `tasks` items would use.
    fn workers_for(&self, tasks: usize) -> usize {
        if in_parallel_region() {
            1
        } else {
            self.threads.min(tasks).max(1)
        }
    }

    /// Maps `f` over `items` in parallel, preserving input order.
    ///
    /// `f` receives the item index and a shared reference to the item. Items
    /// are claimed dynamically from a shared counter, so uneven per-item
    /// costs balance across workers; the result vector is nevertheless
    /// ordered by item index. Runs inline when the executor has one thread,
    /// when there is at most one item, or when called from inside another
    /// parallel region.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic after all workers have joined.
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.workers_for(items.len());
        if workers <= 1 {
            // Inline, without entering a region: a degenerate fan-out of one
            // task must not suppress nested parallelism (when this call *is*
            // nested, the calling worker's own guard already holds the flag).
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let run_worker = || {
            let _guard = RegionGuard::enter();
            let mut local: Vec<(usize, R)> = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                local.push((i, f(i, &items[i])));
            }
            local
        };
        let mut collected: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
            let handles: Vec<_> = (1..workers).map(|_| scope.spawn(run_worker)).collect();
            let mut parts = vec![run_worker()];
            for handle in handles {
                match handle.join() {
                    Ok(part) => parts.push(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            parts
        });
        reassemble(items.len(), collected.drain(..))
    }

    /// Maps `f` over mutable items in parallel, preserving input order.
    ///
    /// Items are dealt to workers round-robin up front (static scheduling —
    /// exclusive references cannot be handed out through a shared counter
    /// without unsafe code); the result vector is ordered by item index. The
    /// same inline fallbacks as [`Executor::par_map_indexed`] apply.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic after all workers have joined.
    pub fn par_map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.workers_for(n);
        if workers <= 1 {
            // Inline, without entering a region (see par_map_indexed).
            return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let mut queues: Vec<Vec<(usize, &mut T)>> = (0..workers)
            .map(|w| Vec::with_capacity(n / workers + usize::from(n % workers > w)))
            .collect();
        for (i, item) in items.iter_mut().enumerate() {
            queues[i % workers].push((i, item));
        }
        let run_worker = |queue: Vec<(usize, &mut T)>| {
            let _guard = RegionGuard::enter();
            queue
                .into_iter()
                .map(|(i, item)| (i, f(i, item)))
                .collect::<Vec<(usize, R)>>()
        };
        let own_queue = queues.remove(0);
        let mut collected: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
            let handles: Vec<_> = queues
                .into_iter()
                .map(|queue| scope.spawn(move || run_worker(queue)))
                .collect();
            let mut parts = vec![run_worker(own_queue)];
            for handle in handles {
                match handle.join() {
                    Ok(part) => parts.push(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            parts
        });
        reassemble(n, collected.drain(..))
    }

    /// Maps `f` over successive `chunk_size`-sized chunks of `data` in
    /// parallel (the final chunk may be shorter), preserving chunk order.
    ///
    /// `f` receives the chunk index and the chunk slice.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero; re-raises worker panics.
    pub fn par_chunks<T, R, F>(&self, data: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let chunks: Vec<&[T]> = data.chunks(chunk_size).collect();
        self.par_map_indexed(&chunks, |i, chunk| f(i, chunk))
    }

    /// Runs `f` over successive `chunk_size`-sized mutable chunks of `data`
    /// in parallel (the final chunk may be shorter).
    ///
    /// `f` receives the chunk index and the exclusive chunk slice; chunks are
    /// disjoint, so workers never contend on data. This is the primitive the
    /// tensor kernels use to fill disjoint row blocks of an output buffer.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero; re-raises worker panics.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_size: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let mut chunks: Vec<&mut [T]> = data.chunks_mut(chunk_size).collect();
        self.par_map_mut(&mut chunks, |i, chunk| f(i, chunk));
    }
}

/// Gathers per-worker `(index, value)` parts back into input order.
fn reassemble<R>(len: usize, parts: impl Iterator<Item = Vec<(usize, R)>>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
    slots.resize_with(len, || None);
    for part in parts {
        for (i, value) in part {
            debug_assert!(slots[i].is_none(), "item {i} produced twice");
            slots[i] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every item index is claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert_eq!(Executor::new(3).threads(), 3);
        assert_eq!(Executor::sequential().threads(), 1);
    }

    #[test]
    fn par_map_indexed_preserves_order_under_contention() {
        // Deliberately uneven per-item costs so workers finish out of order;
        // the result must still line up with the input order.
        let items: Vec<usize> = (0..257).collect();
        let exec = Executor::new(8);
        let out = exec.par_map_indexed(&items, |i, &x| {
            if i % 17 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
            x * 3 + 1
        });
        let expected: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_matches_sequential_executor() {
        let items: Vec<u64> = (0..100).collect();
        let f = |i: usize, x: &u64| x.wrapping_mul(i as u64 + 7);
        let seq = Executor::sequential().par_map_indexed(&items, f);
        let par = Executor::new(5).par_map_indexed(&items, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_mut_visits_every_item_once() {
        let mut items: Vec<usize> = vec![0; 64];
        let indices = Executor::new(4).par_map_mut(&mut items, |i, slot| {
            *slot += i;
            i
        });
        assert_eq!(items, (0..64).collect::<Vec<_>>());
        assert_eq!(indices, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_covers_disjoint_blocks() {
        let mut data = vec![0u32; 103]; // deliberately not a multiple of 8
        Executor::new(4).par_chunks_mut(&mut data, 8, |chunk_idx, chunk| {
            for (offset, v) in chunk.iter_mut().enumerate() {
                *v = (chunk_idx * 8 + offset) as u32;
            }
        });
        let expected: Vec<u32> = (0..103).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn par_chunks_returns_per_chunk_results_in_order() {
        let data: Vec<u32> = (0..50).collect();
        let sums = Executor::new(3).par_chunks(&data, 7, |_, chunk| chunk.iter().sum::<u32>());
        let expected: Vec<u32> = data.chunks(7).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn nested_calls_run_inline() {
        let inner_workers = AtomicUsize::new(0);
        let exec = Executor::new(4);
        let items = [0usize; 8];
        exec.par_map_indexed(&items, |_, _| {
            assert!(in_parallel_region());
            // A nested call must not spawn more workers; it runs inline and
            // still produces ordered results.
            let nested = exec.par_map_indexed(&[1, 2, 3], |i, &x| {
                inner_workers.fetch_add(1, Ordering::Relaxed);
                x + i
            });
            assert_eq!(nested, vec![1, 3, 5]);
        });
        assert!(!in_parallel_region());
        assert_eq!(inner_workers.load(Ordering::Relaxed), 8 * 3);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let exec = Executor::new(4);
        let empty: Vec<u8> = Vec::new();
        assert!(exec.par_map_indexed(&empty, |_, &x| x).is_empty());
        assert_eq!(exec.par_map_indexed(&[9], |i, &x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        Executor::new(4).par_map_indexed(&[0, 1, 2, 3, 4, 5, 6, 7], |i, _| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn global_override_round_trip() {
        set_global_threads(3);
        assert_eq!(Executor::global().threads(), 3);
        reset_global_threads();
        assert!(Executor::global().threads() >= 1);
    }
}
