//! A counting wrapper around the system allocator, for allocation-audit
//! tests.
//!
//! Install it as the global allocator of a test binary and read
//! [`allocation_count`] around the code under audit:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;
//!
//! let before = alloc_counter::allocation_count();
//! run_steady_state();
//! assert_eq!(alloc_counter::allocation_count(), before);
//! ```
//!
//! Every `alloc`, `alloc_zeroed` and `realloc` increments a relaxed atomic
//! counter; deallocation is not counted (an audit cares about acquiring
//! memory, not releasing it). The counter is process-global, so audits must
//! run in a dedicated test binary (Rust integration tests are separate
//! binaries, which is exactly what `tests/allocation_audit.rs` relies on).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The counting allocator: delegates every operation to
/// [`std::alloc::System`], counting allocation requests.
pub struct CountingAllocator;

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the only addition is a relaxed counter increment,
// which has no effect on allocation semantics.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Number of allocation requests (`alloc` + `alloc_zeroed` + `realloc`)
/// since process start.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
