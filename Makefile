# Developer entry points for the bayesnn-fpga workspace.
#
#   make build      - release build of every crate
#   make test       - full test suite (unit + integration + doctests)
#   make test-doc   - documentation tests only (every rustdoc example)
#   make test-st    - the same suite pinned to one thread (BNN_THREADS=1)
#   make test-scalar- the same suite with SIMD disabled (BNN_SIMD=scalar)
#   make bench      - run the criterion bench targets
#   make bench-quant- run only the quantized-predict kernel benches
#   make bench-save - run kernels + framework_phases benches and record the
#                     results as BENCH_kernels.json / BENCH_phases.json
#   make test-plans - allocation-audit + planned-vs-unplanned parity suites,
#                     under BNN_THREADS=1 and 4
#   make test-serving - serving smoke + determinism suites, under
#                     BNN_THREADS=1 and 4
#   make test-robust - serving fault-tolerance suite (panic isolation,
#                     deadlines, backpressure, degradation, chaos), under
#                     BNN_THREADS=1 and 4
#   make test-adaptive - adaptive early-exit parity + allocation audit,
#                     under BNN_THREADS=1 and 4
#   make test-hls   - HLS codegen golden-file snapshots + sim-vs-plan
#                     differential suites, under BNN_THREADS=1 and 4
#   make bench-serving - replay the serving harness and record the results
#                     as BENCH_serving.json
#   make lint       - rustfmt check + clippy with warnings denied
#   make doc        - rustdoc with warnings denied
#   make ci         - everything the merge gate runs

CARGO ?= cargo

# bench-save pipes cargo bench into a parser; pipefail makes a bench failure
# fail the recipe instead of silently recording partial results.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: all build test test-doc test-st test-scalar test-plans test-serving test-robust test-adaptive test-hls bench bench-build bench-quant bench-save bench-serving lint fmt doc clean ci

all: build

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

# Documentation tests on their own: the crate-level worked examples
# (calibrate -> lower -> integer predict, etc.) are part of the merge gate.
test-doc:
	$(CARGO) test -q --doc --workspace

# The parallel phases must produce identical results on one thread; running
# the suite under BNN_THREADS=1 exercises every sequential fallback path.
test-st:
	BNN_THREADS=1 $(CARGO) test -q

# Integer kernels are bitwise identical on every SIMD backend; running the
# suite with BNN_SIMD=scalar keeps the scalar fallback verified on hosts
# where auto-detection would otherwise never leave the vector path.
test-scalar:
	BNN_SIMD=scalar $(CARGO) test -q

# The execution-plan guarantees, pinned at both ends of the thread-count
# range: zero steady-state allocations in planned predict_probs and bit-exact
# planned-vs-unplanned parity across formats and modes.
test-plans:
	BNN_THREADS=1 $(CARGO) test -q --test allocation_audit --test planned_parity --test simd_parity
	BNN_THREADS=4 $(CARGO) test -q --test allocation_audit --test planned_parity --test simd_parity

# The serving-layer guarantees at both ends of the thread-count range: every
# replayed request delivered and bit-exact with direct plan calls, outputs
# invariant to batch boundaries and worker counts, and cache invalidation
# safe under concurrent mutation.
test-serving:
	BNN_THREADS=1 $(CARGO) test -q --test serving_smoke --test serving_determinism
	BNN_THREADS=4 $(CARGO) test -q --test serving_smoke --test serving_determinism

# The fault-tolerance guarantees at both ends of the thread-count range:
# worker panics isolated to their batch (typed replies, supervisor respawn,
# no hung handles), deadline eviction, bounded-queue backpressure, the
# degradation ladder stepping down and recovering, and the seeded chaos run
# (2 of 4 workers panic mid-run under Poisson load, survivors bit-exact).
test-robust:
	BNN_THREADS=1 $(CARGO) test -q --test serving_faults
	BNN_THREADS=4 $(CARGO) test -q --test serving_faults

# The adaptive early-exit guarantees at both ends of the thread-count range:
# adaptive-batch prediction bit-exact with per-sample evaluation across all
# formats/policies/executors, `Never` identical to the fixed-depth path, and
# zero steady-state allocations through retirement + survivor compaction.
test-adaptive:
	BNN_THREADS=1 $(CARGO) test -q --test adaptive_exit_parity --test allocation_audit
	BNN_THREADS=4 $(CARGO) test -q --test adaptive_exit_parity --test allocation_audit

# The HLS codegen guarantees at both ends of the thread-count range: emitted
# defines.h/top.cpp pinned against the checked-in goldens (regenerate with
# UPDATE_GOLDEN=1, see tests/hls_golden_files.rs), and the golden-reference
# simulator bit-exact with the compiled integer plan across every zoo model
# × searched format.
test-hls:
	BNN_THREADS=1 $(CARGO) test -q --test hls_golden_files --test hls_golden_sim
	BNN_THREADS=4 $(CARGO) test -q --test hls_golden_files --test hls_golden_sim

bench:
	$(CARGO) bench -p bnn-bench

# Only the quantized-predict kernel benches (planned vs unplanned + compile
# cost) — the fast signal when iterating on the integer hot path.
bench-quant:
	$(CARGO) bench -p bnn-bench --bench kernels -- quantized

# Compile the bench targets without running them (fast CI signal).
bench-build:
	$(CARGO) bench --no-run

# Record the kernel + per-phase benchmark results as machine-readable JSON at
# the repo root, so the perf trajectory is diffable across PRs.
bench-save:
	$(CARGO) build --release -p bnn-bench --bin bench_save
	$(CARGO) bench -p bnn-bench --bench kernels \
		| $(CARGO) run --release -q -p bnn-bench --bin bench_save -- BENCH_kernels.json
	$(CARGO) bench -p bnn-bench --bench framework_phases \
		| $(CARGO) run --release -q -p bnn-bench --bin bench_save -- BENCH_phases.json

# Replay seeded open-loop traffic against the dynamic-batching server (two
# batching configs on the LeNet-5 8-bit plan) and record requests/sec,
# p50/p99 latency and batch occupancy as machine-readable JSON.
bench-serving:
	$(CARGO) run --release -p bnn-bench --bin bench_serving -- BENCH_serving.json

lint:
	$(CARGO) fmt --check
	$(CARGO) clippy --workspace --all-targets -- -D warnings

fmt:
	$(CARGO) fmt

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --no-deps --workspace

clean:
	$(CARGO) clean

ci: lint build test test-doc test-st test-scalar test-plans test-serving test-robust test-adaptive test-hls bench-build doc
