# Developer entry points for the bayesnn-fpga workspace.
#
#   make build   - release build of every crate
#   make test    - full test suite (unit + integration + doctests)
#   make bench   - run the criterion bench targets
#   make lint    - rustfmt check + clippy with warnings denied
#   make doc     - rustdoc with warnings denied
#   make ci      - everything the merge gate runs

CARGO ?= cargo

.PHONY: all build test bench bench-build lint fmt doc clean ci

all: build

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

bench:
	$(CARGO) bench -p bnn-bench

# Compile the bench targets without running them (fast CI signal).
bench-build:
	$(CARGO) bench --no-run

lint:
	$(CARGO) fmt --check
	$(CARGO) clippy --workspace --all-targets -- -D warnings

fmt:
	$(CARGO) fmt

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --no-deps --workspace

clean:
	$(CARGO) clean

ci: lint build test bench-build doc
